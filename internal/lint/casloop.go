package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CASLoop flags compare-and-swap retry loops whose expected-value operand
// is never reloaded inside the loop. Retrying a failed CAS with the same
// stale expectation either spins forever or — worse — eventually succeeds
// against a recycled value it never observed: exactly the ABA failure class
// the paper's tagged age word exists to prevent (Section 3.2, "bounded
// tags"). The fix is mechanical: move the load of the expected value inside
// the loop, as Figure 5's popTop does by re-reading age on every attempt.
//
// A CAS call (wrapper-method CompareAndSwap or function-style
// atomic.CompareAndSwapX) inside a for loop is reported when its expected
// operand is a variable that is not assigned anywhere in the loop's body or
// post statement. Expected operands that are constants, fresh per-iteration
// loads, or non-identifier expressions are never flagged, and a variable
// whose address is taken inside the loop is conservatively assumed
// reloaded.
var CASLoop = &Analyzer{
	Name: "casloop",
	Doc:  "flags CAS retry loops whose expected value is not reloaded inside the loop (stale read; ABA risk)",
	Run:  runCASLoop,
}

func runCASLoop(pass *Pass) error {
	for _, f := range pass.Files {
		var loops []*ast.ForStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, n)
				// Init runs once: CAS expectations loaded there are stale on
				// retry, so only Cond/Body/Post count as inside the loop.
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				if n.Cond != nil {
					ast.Inspect(n.Cond, walk)
				}
				if n.Post != nil {
					ast.Inspect(n.Post, walk)
				}
				ast.Inspect(n.Body, walk)
				loops = loops[:len(loops)-1]
				return false
			case *ast.CallExpr:
				if len(loops) == 0 {
					return true
				}
				oldArg := casExpectedArg(pass.TypesInfo, n)
				if oldArg == nil {
					return true
				}
				ident, ok := ast.Unparen(oldArg).(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.TypesInfo.Uses[ident].(*types.Var)
				if !ok {
					return true // nil, constants, etc.
				}
				loop := loops[len(loops)-1]
				if !assignedIn(pass.TypesInfo, loop, v) {
					pass.Reportf(oldArg.Pos(),
						"CAS retry loop never reloads expected value %q: a failed CompareAndSwap retries with a stale read (ABA risk); load %q inside the loop",
						v.Name(), v.Name())
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// casExpectedArg returns the expected-value ("old") operand of a
// compare-and-swap call, or nil if the call is not a CAS.
func casExpectedArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	switch {
	case isAtomicMethod(fn) && fn.Name() == "CompareAndSwap" && len(call.Args) == 2:
		return call.Args[0]
	case isAtomicFunc(fn) && strings.HasPrefix(fn.Name(), "CompareAndSwap") && len(call.Args) == 3:
		return call.Args[1]
	}
	return nil
}

// assignedIn reports whether v is (re)assigned inside loop's body or post
// statement — by assignment, short declaration, declaration, inc/dec,
// range binding, or (conservatively) having its address taken. The CAS
// call's own position is irrelevant: an assignment anywhere in the body
// reloads before the next retry.
func assignedIn(info *types.Info, loop *ast.ForStmt, v *types.Var) bool {
	found := false
	objOf := func(e ast.Expr) types.Object {
		ident, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := info.Defs[ident]; o != nil {
			return o
		}
		return info.Uses[ident]
	}
	check := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if objOf(lhs) == v {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if objOf(n.X) == v {
				found = true
			}
		case *ast.RangeStmt:
			if objOf(n.Key) == v || objOf(n.Value) == v {
				found = true
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if info.Defs[name] == v {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && objOf(n.X) == v {
				found = true // address escapes; assume a reload happens
			}
		}
		return !found
	}
	ast.Inspect(loop.Body, check)
	if loop.Post != nil {
		ast.Inspect(loop.Post, check)
	}
	return found
}
