package sched_test

import (
	"fmt"

	"worksteal/internal/sched"
	"worksteal/internal/workload"
)

// The basic pattern: create a pool, Run a root task, spawn work from it.
func ExamplePool_Run() {
	pool := sched.New(sched.Config{Workers: 4})
	var sum int
	pool.Run(func(w *sched.Worker) {
		sum = sched.Reduce(w, 1, 11, 2,
			func(i int) int { return i },
			func(a, b int) int { return a + b })
	})
	fmt.Println(sum)
	// Output: 55
}

// Fork-join: fork a computation, do other work, then join its result.
// Join executes other tasks while waiting, so no worker ever blocks idly.
func ExampleFork() {
	pool := sched.New(sched.Config{Workers: 2})
	pool.Run(func(w *sched.Worker) {
		future := sched.Fork(w, func(*sched.Worker) int { return 6 * 7 })
		other := 100
		fmt.Println(future.Join(w) + other)
	})
	// Output: 142
}

// Parallel loops split ranges recursively; un-stolen execution is a plain
// left-to-right loop.
func ExampleParallelFor() {
	pool := sched.New(sched.Config{Workers: 4})
	squares := make([]int, 6)
	pool.Run(func(w *sched.Worker) {
		sched.ParallelFor(w, 0, len(squares), 2, func(i int) {
			squares[i] = i * i
		})
	})
	fmt.Println(squares)
	// Output: [0 1 4 9 16 25]
}

// RunGraph executes an explicit computation dag (with known work T1 and
// critical-path length Tinf) using the paper's Figure 3 scheduling loop.
func ExampleRunGraph() {
	g := workload.FibDag(10) // the fib(10) fork-join dag
	res := sched.RunGraph(sched.GraphConfig{Graph: g, Workers: 2, Seed: 1})
	fmt.Println(res.NodesExecuted == int64(g.Work()))
	// Output: true
}
