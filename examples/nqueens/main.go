// Nqueens: irregular tree-search parallelism. Unlike fib, the search tree
// is highly unbalanced, which is exactly the situation work stealing's
// randomized load balancing handles without any tuning: busy workers' deque
// tops hold the largest unexplored subtrees, and thieves grab those first
// (the structural lemma in action).
//
// Run with:
//
//	go run ./examples/nqueens -n 11 -depth 3 -workers 4
package main

import (
	"flag"
	"fmt"
	"sync/atomic"
	"time"

	"worksteal/internal/sched"
)

// place reports whether a queen at (row, col) is safe given previous rows.
func place(rows []int8, row, col int8) bool {
	for r := int8(0); r < row; r++ {
		c := rows[r]
		if c == col || c-col == row-r || col-c == row-r {
			return false
		}
	}
	return true
}

// countSerial explores the remaining rows sequentially.
func countSerial(n int, rows []int8, row int8) int64 {
	if int(row) == n {
		return 1
	}
	var total int64
	for col := int8(0); col < int8(n); col++ {
		if place(rows, row, col) {
			rows[row] = col
			total += countSerial(n, rows, row+1)
		}
	}
	return total
}

// countPar spawns one task per safe column until spawnDepth, then goes
// serial.
func countPar(w *sched.Worker, n int, rows []int8, row int8, spawnDepth int, total *atomic.Int64) {
	if int(row) == n {
		total.Add(1)
		return
	}
	if int(row) >= spawnDepth {
		total.Add(countSerial(n, rows, row))
		return
	}
	for col := int8(0); col < int8(n); col++ {
		if place(rows, row, col) {
			child := make([]int8, n)
			copy(child, rows)
			child[row] = col
			w.Spawn(func(w2 *sched.Worker) {
				countPar(w2, n, child, row+1, spawnDepth, total)
			})
		}
	}
}

func main() {
	n := flag.Int("n", 11, "board size")
	depth := flag.Int("depth", 3, "rows to parallelize before going serial")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	serialCount := countSerial(*n, make([]int8, *n), 0)
	serialTime := time.Since(start)

	pool := sched.New(sched.Config{Workers: *workers})
	var total atomic.Int64
	start = time.Now()
	pool.Run(func(w *sched.Worker) {
		countPar(w, *n, make([]int8, *n), 0, *depth, &total)
	})
	parTime := time.Since(start)

	if total.Load() != serialCount {
		panic(fmt.Sprintf("nqueens mismatch: %d != %d", total.Load(), serialCount))
	}
	s := pool.Stats()
	fmt.Printf("%d-queens solutions: %d\n", *n, total.Load())
	fmt.Printf("serial   %v\n", serialTime)
	fmt.Printf("parallel %v on %d workers (speedup %.2f)\n",
		parTime, pool.Workers(), float64(serialTime)/float64(parTime))
	fmt.Printf("%d tasks, %d steals / %d attempts\n", s.TasksRun, s.Steals, s.StealAttempts)
}
