package sim

import (
	"fmt"
	"testing"

	"worksteal/internal/dag"
)

// This file model-checks the deque implementation by exhaustive
// interleaving enumeration — the executable analogue of the paper's
// companion correctness proof (Blumofe, Plaxton and Ray, "Verification of a
// concurrent deque implementation", UT TR-99-11). Because the simulator's
// deque operations are explicit state machines, we can enumerate EVERY
// interleaving of concurrent operations on small initial states and check
// the relaxed-semantics contract on each:
//
//   - no node is returned by two different operations (no duplication);
//   - every node is either returned by exactly one operation or still in
//     the deque afterwards (no loss);
//   - the owner's popBottom returns NIL only if the deque was empty at some
//     point or a thief took the last item;
//   - a thief's popTop may return NIL only if at some point the deque was
//     empty or the topmost item was removed by another process (we verify
//     the weaker consequence: popTop never returns NIL when it ran with no
//     concurrency and the deque was non-empty).

// opSpec describes one operation to run in an interleaving.
type opSpec struct {
	name  string
	make  func(d *abpDeque) op
	owner bool // owner ops must not interleave with each other
}

// The length of an op's instruction path depends on the interleaving, so
// the enumeration is lazy: the schedule chooses which op steps next, and
// state is cloned at each branch. maxOpSteps caps per-op steps (the longest
// Figure 5 path is 7 instructions).
const maxOpSteps = 8

// lazyEnumerate explores every interleaving of the ops built by factories
// on a fresh deque per branch. visit receives the deque and results.
func lazyEnumerate(t *testing.T, initial []dag.NodeID, factories []opSpec,
	visit func(label string, d *abpDeque, results []dag.NodeID)) {
	var explore func(label string, d *abpDeque, ops []op, done []bool, results []dag.NodeID, depth int)
	explore = func(label string, d *abpDeque, ops []op, done []bool, results []dag.NodeID, depth int) {
		if depth > maxOpSteps*len(ops) {
			t.Fatalf("interleaving too deep: %s", label)
		}
		anyPending := false
		for i := range ops {
			if done[i] {
				continue
			}
			anyPending = true
			// Branch: op i executes the next instruction. Clone state.
			d2 := cloneDeque(d)
			ops2 := make([]op, len(ops))
			done2 := append([]bool(nil), done...)
			results2 := append([]dag.NodeID(nil), results...)
			for j := range ops {
				if !done[j] {
					ops2[j] = cloneOp(ops[j], d2)
				}
			}
			if ops2[i].step() {
				done2[i] = true
				results2[i] = ops2[i].result()
			}
			explore(fmt.Sprintf("%s,%d", label, i), d2, ops2, done2, results2, depth+1)
		}
		if !anyPending {
			visit(label, d, results)
		}
	}

	d := newABPDeque(16, 32)
	for i := 0; i < len(initial); i++ {
		// initial[0] ends at the top, initial[len-1] at the bottom.
		o := d.startPushBottom(0, initial[i])
		for !o.step() {
		}
	}
	ops := make([]op, len(factories))
	for i, f := range factories {
		ops[i] = f.make(d)
	}
	explore("", d, ops, make([]bool, len(factories)), make([]dag.NodeID, len(factories)), 0)
}

// cloneDeque deep-copies deque state.
func cloneDeque(d *abpDeque) *abpDeque {
	nd := &abpDeque{age: d.age, bot: d.bot, tagMask: d.tagMask}
	nd.deq = append([]dag.NodeID(nil), d.deq...)
	return nd
}

// cloneOp copies an in-flight op, retargeting it at the cloned deque.
func cloneOp(o op, d *abpDeque) op {
	switch x := o.(type) {
	case *pushBottomOp:
		c := *x
		c.d = d
		return &c
	case *popBottomOp:
		c := *x
		c.d = d
		return &c
	case *popTopOp:
		c := *x
		c.d = d
		return &c
	default:
		panic("unknown op type")
	}
}

// checkOutcome verifies no-duplication and no-loss for a finished
// interleaving: initial items = returned items (each at most once) + items
// remaining in the deque.
func checkOutcome(t *testing.T, label string, initial []dag.NodeID, pushed []dag.NodeID,
	d *abpDeque, results []dag.NodeID) {
	t.Helper()
	returned := map[dag.NodeID]int{}
	for _, r := range results {
		if r != dag.None {
			returned[r]++
		}
	}
	for v, n := range returned {
		if n > 1 {
			t.Fatalf("%s: node %d returned %d times", label, v, n)
		}
	}
	inDeque := map[dag.NodeID]int{}
	for _, v := range d.snapshot() {
		inDeque[v]++
	}
	for v, n := range inDeque {
		if n > 1 {
			t.Fatalf("%s: node %d appears %d times in the deque", label, v, n)
		}
		if returned[v] > 0 {
			t.Fatalf("%s: node %d both returned and still in deque", label, v)
		}
	}
	all := append(append([]dag.NodeID(nil), initial...), pushed...)
	for _, v := range all {
		if returned[v]+inDeque[v] != 1 {
			t.Fatalf("%s: node %d accounted %d times (returned %d, in deque %d)\nresults=%v snapshot=%v",
				label, v, returned[v]+inDeque[v], returned[v], inDeque[v], results, d.snapshot())
		}
	}
}

// TestExhaustivePopBottomVsThieves enumerates all interleavings of the
// owner's popBottom against one and two concurrent popTops, over initial
// deque sizes 0..3.
func TestExhaustivePopBottomVsThieves(t *testing.T) {
	for size := 0; size <= 3; size++ {
		for thieves := 1; thieves <= 2; thieves++ {
			initial := make([]dag.NodeID, size)
			for i := range initial {
				initial[i] = dag.NodeID(i + 1)
			}
			factories := []opSpec{{name: "popBottom", owner: true,
				make: func(d *abpDeque) op { return d.startPopBottom(0) }}}
			for k := 0; k < thieves; k++ {
				id := k + 1
				factories = append(factories, opSpec{name: "popTop",
					make: func(d *abpDeque) op { return d.startPopTop(id) }})
			}
			count := 0
			lazyEnumerate(t, initial, factories, func(label string, d *abpDeque, results []dag.NodeID) {
				count++
				checkOutcome(t, fmt.Sprintf("size=%d thieves=%d%s", size, thieves, label),
					initial, nil, d, results)
				// Owner semantics: with size > thieves items, the owner can
				// never come back empty-handed.
				if size > thieves && results[0] == dag.None {
					t.Fatalf("size=%d thieves=%d%s: popBottom returned NIL with %d items and %d thieves",
						size, thieves, label, size, thieves)
				}
			})
			if count == 0 {
				t.Fatalf("no interleavings explored")
			}
			t.Logf("size=%d thieves=%d: %d interleavings verified", size, thieves, count)
		}
	}
}

// TestExhaustivePushBottomVsThieves enumerates pushBottom racing thieves.
func TestExhaustivePushBottomVsThieves(t *testing.T) {
	for size := 0; size <= 2; size++ {
		initial := make([]dag.NodeID, size)
		for i := range initial {
			initial[i] = dag.NodeID(i + 1)
		}
		pushed := []dag.NodeID{99}
		factories := []opSpec{
			{name: "pushBottom", owner: true,
				make: func(d *abpDeque) op { return d.startPushBottom(0, 99) }},
			{name: "popTop", make: func(d *abpDeque) op { return d.startPopTop(1) }},
			{name: "popTop", make: func(d *abpDeque) op { return d.startPopTop(2) }},
		}
		count := 0
		lazyEnumerate(t, initial, factories, func(label string, d *abpDeque, results []dag.NodeID) {
			count++
			checkOutcome(t, fmt.Sprintf("push size=%d%s", size, label), initial, pushed, d, results)
		})
		t.Logf("push size=%d: %d interleavings verified", size, count)
	}
}

// TestExhaustiveThievesOnly enumerates pure thief contention: successes
// never exceed the items available, and at least one thief succeeds on a
// non-empty deque (a CAS only fails because another succeeded).
func TestExhaustiveThievesOnly(t *testing.T) {
	for size := 0; size <= 2; size++ {
		initial := make([]dag.NodeID, size)
		for i := range initial {
			initial[i] = dag.NodeID(i + 1)
		}
		factories := []opSpec{
			{name: "popTop", make: func(d *abpDeque) op { return d.startPopTop(1) }},
			{name: "popTop", make: func(d *abpDeque) op { return d.startPopTop(2) }},
			{name: "popTop", make: func(d *abpDeque) op { return d.startPopTop(3) }},
		}
		lazyEnumerate(t, initial, factories, func(label string, d *abpDeque, results []dag.NodeID) {
			checkOutcome(t, fmt.Sprintf("thieves size=%d%s", size, label), initial, nil, d, results)
			got := 0
			for _, r := range results {
				if r != dag.None {
					got++
				}
			}
			// The relaxed semantics allow spurious NILs under contention
			// (two thieves racing for the same top item: the loser returns
			// NIL even though a second item sits below). But at least one
			// thief must succeed on a non-empty deque, and successes never
			// exceed the items available.
			max := size
			if max > 3 {
				max = 3
			}
			if got > max {
				t.Fatalf("thieves size=%d%s: %d successes exceed %d items", size, label, got, max)
			}
			if size > 0 && got == 0 {
				t.Fatalf("thieves size=%d%s: every thief failed on a non-empty deque (a CAS can only fail if another succeeded)", size, label)
			}
		})
	}
}

// TestExhaustiveSequentialOwnerOps sanity-checks the enumeration machinery
// itself: a single owner op explores exactly one interleaving and matches
// direct execution.
func TestExhaustiveSequentialOwnerOps(t *testing.T) {
	initial := []dag.NodeID{1, 2}
	count := 0
	lazyEnumerate(t, initial, []opSpec{{name: "popBottom", owner: true,
		make: func(d *abpDeque) op { return d.startPopBottom(0) }}},
		func(label string, d *abpDeque, results []dag.NodeID) {
			count++
			if results[0] != 2 {
				t.Fatalf("popBottom = %v, want 2 (bottom)", results[0])
			}
			if len(d.snapshot()) != 1 || d.snapshot()[0] != 1 {
				t.Fatalf("snapshot = %v", d.snapshot())
			}
		})
	if count != 1 {
		t.Fatalf("%d interleavings for a single op", count)
	}
}
