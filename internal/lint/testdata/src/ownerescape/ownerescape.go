// Package ownerescape is the analysistest fixture for the ownerescape
// analyzer: inside an //abp:owner function (or a literal it owns), a
// deque-typed value must not escape via go statements, channel sends, or
// stores into fields, elements, composite literals, or package variables.
package ownerescape

type deque struct{ items []*int }

func (d *deque) PushBottom(v *int) bool {
	d.items = append(d.items, v)
	return true
}

func (d *deque) PopBottom() *int {
	if len(d.items) == 0 {
		return nil
	}
	v := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return v
}

type registry struct{ d *deque }

var global *deque

func consume(*deque) {}

func worker(d *deque) {}

// run is the audited owner context; every escape below manufactures a
// second owner.
//
//abp:owner
func run(d *deque, ch chan *deque, r *registry) {
	d.PushBottom(new(int)) // accepted: owner-only op, no escape
	consume(d)             // accepted: static call, the callee stays on this goroutine
	local := d             // accepted: a local alias does not escape
	_ = local

	go worker(d)               // want `passes deque d to a go statement`
	go d.PopBottom()           // want `escapes deque d into a go statement`
	go func() { consume(d) }() // want `launches a closure capturing deque d`
	ch <- d                    // want `sends deque d on a channel`
	r.d = d                    // want `stores deque d into r.d`
	global = d                 // want `stores deque d into global`
	_ = registry{d: d}         // want `embeds deque d in a composite literal`

	//abp:ignore ownerescape the logger goroutine only reads Len, and joins before the run ends
	go worker(d) // accepted: justified ignore
}

// inherited literals are owned too: an immediately invoked closure runs on
// the owner's goroutine, so its escapes are also audited.
//
//abp:owner
func inherited(d *deque, ch chan *deque) {
	func() {
		ch <- d // want `sends deque d on a channel`
	}()
}

// setup is not an owner context: wiring a deque into its pool at
// construction time is the caller's business, not an ownership escape.
func setup(r *registry, d *deque) {
	r.d = d      // accepted: not inside an //abp:owner context
	global = d   // accepted: not inside an //abp:owner context
	go worker(d) // accepted: not inside an //abp:owner context
}

var (
	_ = run
	_ = inherited
	_ = setup
)
