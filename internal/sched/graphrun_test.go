package sched

import (
	"fmt"
	"testing"

	"worksteal/internal/dag"
	"worksteal/internal/workload"
)

func TestRunGraphAllWorkloads(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/W=%d", spec.Name, workers), func(t *testing.T) {
				g := spec.Build()
				res := RunGraph(GraphConfig{Graph: g, Workers: workers, Seed: 11})
				if res.NodesExecuted != int64(g.NumNodes()) {
					t.Fatalf("executed %d of %d", res.NodesExecuted, g.NumNodes())
				}
				total := int64(0)
				for _, n := range res.NodesPerWorker {
					total += n
				}
				if total != res.NodesExecuted {
					t.Fatalf("per-worker sum %d != total %d", total, res.NodesExecuted)
				}
				if res.Steals > res.StealAttempts {
					t.Fatalf("steals %d > attempts %d", res.Steals, res.StealAttempts)
				}
			})
		}
	}
}

func TestRunGraphFigure1(t *testing.T) {
	g := dag.Figure1()
	res := RunGraph(GraphConfig{Graph: g, Workers: 3, Seed: 1})
	if res.NodesExecuted != 11 {
		t.Fatalf("executed %d", res.NodesExecuted)
	}
}

func TestRunGraphMutexDeque(t *testing.T) {
	g := workload.FibDag(12)
	res := RunGraph(GraphConfig{Graph: g, Workers: 4, Deque: DequeMutex, Seed: 2})
	if res.NodesExecuted != int64(g.NumNodes()) {
		t.Fatalf("executed %d of %d", res.NodesExecuted, g.NumNodes())
	}
}

func TestRunGraphNoYield(t *testing.T) {
	g := workload.FibDag(12)
	res := RunGraph(GraphConfig{Graph: g, Workers: 4, DisableYield: true, Seed: 2})
	if res.NodesExecuted != int64(g.NumNodes()) || res.Yields != 0 {
		t.Fatalf("executed %d, yields %d", res.NodesExecuted, res.Yields)
	}
}

func TestRunGraphWithNodeWork(t *testing.T) {
	g := workload.SpawnSpine(8, 16)
	res := RunGraph(GraphConfig{Graph: g, Workers: 4, NodeWork: 200, Seed: 3})
	if res.NodesExecuted != int64(g.NumNodes()) {
		t.Fatal("incomplete")
	}
}

// With real node work and multiple CPUs, the parallel run distributes nodes
// across workers.
func TestRunGraphDistributesWork(t *testing.T) {
	g := workload.SpawnSpine(32, 128)
	res := RunGraph(GraphConfig{Graph: g, Workers: 4, NodeWork: 500, Seed: 5})
	active := 0
	for _, n := range res.NodesPerWorker {
		if n > 0 {
			active++
		}
	}
	if active < 2 {
		t.Logf("only %d active workers (machine may be loaded); nodes=%v", active, res.NodesPerWorker)
	}
	if res.Steals == 0 {
		t.Log("no steals observed; unusual but possible under load")
	}
}

func TestRunGraphPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]GraphConfig{
		"nil graph":        {},
		"negative workers": {Graph: workload.Chain(3), Workers: -2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			RunGraph(cfg)
		}()
	}
}

func TestSpin(t *testing.T) {
	spin(0) // no-op
	spin(-5)
	spin(100)
	if spinSink.Load() == 0 {
		t.Error("spin sink untouched")
	}
}

func TestRunGraphChaseLev(t *testing.T) {
	g := workload.FibDag(13)
	res := RunGraph(GraphConfig{Graph: g, Workers: 4, Deque: DequeChaseLev, Seed: 4})
	if res.NodesExecuted != int64(g.NumNodes()) {
		t.Fatalf("executed %d of %d", res.NodesExecuted, g.NumNodes())
	}
}

func TestRunGraphNodeFunc(t *testing.T) {
	// Wavefront DP on a grid dag: cell (i,j) sums its north and west
	// neighbours (binomial coefficients). The dag's edges are exactly the
	// data dependencies, so the result is deterministic.
	const rows, cols = 8, 10
	g := workload.Grid(rows, cols)
	dp := make([]int64, rows*cols)
	res := RunGraph(GraphConfig{Graph: g, Workers: 4, Seed: 5,
		NodeFunc: func(u dag.NodeID) {
			i, j := int(u)/cols, int(u)%cols
			switch {
			case i == 0 || j == 0:
				dp[u] = 1
			default:
				dp[u] = dp[(i-1)*cols+j] + dp[i*cols+(j-1)]
			}
		}})
	if res.NodesExecuted != rows*cols {
		t.Fatal("incomplete")
	}
	// dp[i][j] = C(i+j, i); check a few cells.
	if dp[1*cols+1] != 2 || dp[2*cols+2] != 6 || dp[(rows-1)*cols+cols-1] == 0 {
		t.Fatalf("dp wrong: %v", dp)
	}
	var binom func(n, k int) int64
	binom = func(n, k int) int64 {
		r := int64(1)
		for i := 0; i < k; i++ {
			r = r * int64(n-i) / int64(i+1)
		}
		return r
	}
	if want := binom(rows-1+cols-1, rows-1); dp[(rows-1)*cols+cols-1] != want {
		t.Fatalf("corner = %d, want %d", dp[(rows-1)*cols+cols-1], want)
	}
}
