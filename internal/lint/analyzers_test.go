package lint

import "testing"

func TestAtomicMix(t *testing.T)   { runAnalyzerTest(t, AtomicMix, "atomicmix") }
func TestOwnerOnly(t *testing.T)   { runAnalyzerTest(t, OwnerOnly, "owneronly") }
func TestNonBlocking(t *testing.T) { runAnalyzerTest(t, NonBlocking, "nonblocking") }
func TestCASLoop(t *testing.T)     { runAnalyzerTest(t, CASLoop, "casloop") }
func TestOwnerEscape(t *testing.T) { runAnalyzerTest(t, OwnerEscape, "ownerescape") }
func TestHandshake(t *testing.T)   { runAnalyzerTest(t, Handshake, "handshake") }
func TestMustCheck(t *testing.T)   { runAnalyzerTest(t, MustCheck, "mustcheck") }
func TestTagABA(t *testing.T)      { runAnalyzerTest(t, TagABA, "tagaba") }

// TestSeededPR1Bug replays, in miniature, the discarded-PushBottom bug that
// PR 1 fixed in sched.(*Pool).submitRoot and asserts that mustcheck now
// catches that bug class mechanically. The // want assertions run through
// the standard harness; the explicit check below additionally guarantees
// the fixture never degrades into an empty (vacuously passing) one.
func TestSeededPR1Bug(t *testing.T) {
	runAnalyzerTest(t, MustCheck, "seeded")

	pkgs, err := NewLoader().Load("testdata/src/seeded", ".")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := Run(MustCheck, pkg)
		if err != nil {
			t.Fatal(err)
		}
		total += len(diags)
	}
	if total == 0 {
		t.Fatal("mustcheck reported nothing on the seeded PR-1 bug: the submitRoot deadlock class would ship again")
	}
}

// TestSuiteCleanOnOwnPackage dogfoods the loader and the full suite on the
// lint package itself: zero findings expected.
func TestSuiteCleanOnOwnPackage(t *testing.T) {
	pkgs, err := NewLoader().Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}
