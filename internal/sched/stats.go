package sched

import (
	"fmt"
	"strings"
	"time"
)

// Stats aggregates per-worker scheduler counters. All counters accumulate
// across runs. The per-worker counters behind it are atomics, so
// Pool.Stats is safe to call at any time, including concurrently with a
// running Run (the snapshot is per-counter consistent, not a single
// instant across counters).
type Stats struct {
	TasksRun       int64
	Spawns         int64
	InlineRuns     int64 // spawns executed inline because a deque was full
	TasksDropped   int64 // stale tasks discarded after a panic-aborted submission
	TasksCancelled int64 // tasks discarded unrun by a cancelled or stopped submission
	StallsDetected int64 // stall episodes surfaced by the watchdog (watchdog.go)
	Steals         int64
	StealAttempts  int64
	Yields         int64
	Parks          int64 // times a worker blocked outright on its park channel
	Wakes          int64 // idle workers (parked or napping) woken by a work signal
	BackoffNanos   int64 // total time idle workers spent in backoff naps

	// Service-mode counters (serve.go).
	Submitted        int64 // submissions accepted onto the injector shards
	SubmitsRejected  int64 // submissions rejected (ErrOverloaded under ShedReject, or ErrDraining)
	SubmitsCallerRun int64 // submissions shed to the caller (ShedCallerRuns)
	InjectorBacklog  int64 // momentary injector occupancy at the Stats call

	// Elastic-fleet counters (resize.go).
	Resizes        int64 // Resize calls that changed the fleet target
	WorkersRetired int64 // workers that completed retirement (shrink safe points reached)
	ActiveWorkers  int64 // workers in the active state at the Stats call
}

// String renders the counters as an aligned two-column table, one counter
// per line (the table cmd/abpbench -stats prints).
func (s Stats) String() string {
	var b strings.Builder
	row := func(name string, v any) { fmt.Fprintf(&b, "%-17s %14v\n", name, v) }
	row("tasks-run", s.TasksRun)
	row("spawns", s.Spawns)
	row("inline-runs", s.InlineRuns)
	row("tasks-dropped", s.TasksDropped)
	row("tasks-cancelled", s.TasksCancelled)
	row("stalls", s.StallsDetected)
	row("steals", s.Steals)
	row("steal-attempts", s.StealAttempts)
	row("yields", s.Yields)
	row("parks", s.Parks)
	row("wakes", s.Wakes)
	row("backoff", time.Duration(s.BackoffNanos).Round(time.Microsecond))
	row("submitted", s.Submitted)
	row("submits-rejected", s.SubmitsRejected)
	row("submits-callerrun", s.SubmitsCallerRun)
	row("injector-backlog", s.InjectorBacklog)
	row("resizes", s.Resizes)
	row("workers-retired", s.WorkersRetired)
	row("active-workers", s.ActiveWorkers)
	return b.String()
}
