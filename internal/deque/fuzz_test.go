package deque

import "testing"

// FuzzOwnerOpsAgainstModel drives the ABP and Chase-Lev deques through an
// arbitrary owner-side operation sequence and compares every result against
// the sequential reference model (owner-only usage must meet the ideal
// semantics exactly).
func FuzzOwnerOpsAgainstModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 1, 1, 2, 2})
	f.Add([]byte{2, 2, 2, 0, 2, 1})
	f.Add([]byte{0, 1, 0, 2, 0, 1, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		impls := map[string]Dequer[int]{
			"abp":      NewWithCapacity[int](128),
			"chaselev": NewChaseLev[int](),
		}
		for name, d := range impls {
			var model []*int
			next := 0
			for _, op := range ops {
				switch op % 3 {
				case 0:
					v := next
					next++
					vp := &v
					if d.PushBottom(vp) {
						model = append(model, vp)
					} else if len(model) < 128 {
						t.Fatalf("%s: push failed below capacity", name)
					}
				case 1:
					got := d.PopBottom()
					var want *int
					if len(model) > 0 {
						want = model[len(model)-1]
						model = model[:len(model)-1]
					}
					if got != want {
						t.Fatalf("%s: PopBottom = %v, want %v", name, got, want)
					}
				case 2:
					got := d.PopTop()
					var want *int
					if len(model) > 0 {
						want = model[0]
						model = model[1:]
					}
					if got != want {
						t.Fatalf("%s: PopTop = %v, want %v", name, got, want)
					}
				}
				if d.Len() != len(model) {
					t.Fatalf("%s: Len = %d, want %d", name, d.Len(), len(model))
				}
			}
		}
	})
}
