package offline

import (
	"math/rand"
	"strings"
	"testing"

	"worksteal/internal/dag"
	"worksteal/internal/workload"
)

func TestFigure2GreedySchedule(t *testing.T) {
	g := dag.Figure1()
	k := Figure2Kernel()
	e := Greedy(g, k, 1000)
	if err := e.Validate(k); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !e.IsGreedy() {
		t.Fatal("schedule not greedy")
	}
	// The paper's Figure 2(b) schedule has length 10 for this kernel and dag.
	if e.Length() != 10 {
		t.Fatalf("length = %d, want 10\n%s", e.Length(), e)
	}
	if pa := e.ProcessorAverage(); pa != 2.0 {
		t.Fatalf("P_A = %v, want 2.0", pa)
	}
	// 20 tokens total: 11 work (one per node) + 9 idle.
	if e.TotalProcSteps() != 20 || e.IdleTokens() != 9 {
		t.Fatalf("tokens = %d (idle %d), want 20 (idle 9)", e.TotalProcSteps(), e.IdleTokens())
	}
	if err := CheckTheorem1(e); err != nil {
		t.Error(err)
	}
	if err := CheckTheorem2(e, k.P()); err != nil {
		t.Error(err)
	}
}

func TestScheduleString(t *testing.T) {
	g := dag.Figure1()
	k := Figure2Kernel()
	e := Greedy(g, k, 1000)
	s := e.String()
	if !strings.Contains(s, "x1") || !strings.Contains(s, "I") {
		t.Errorf("String output missing expected tokens:\n%s", s)
	}
	if !strings.Contains(s, "length 10") {
		t.Errorf("String output missing summary:\n%s", s)
	}
}

func TestGreedyDedicatedBounds(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		for _, p := range []int{1, 2, 3, 8} {
			k := Dedicated{NumProcs: p}
			e := Greedy(g, k, 10*g.Work()+100)
			if err := e.Validate(k); err != nil {
				t.Fatalf("%s P=%d: %v", spec.Name, p, err)
			}
			if !e.IsGreedy() {
				t.Fatalf("%s P=%d: not greedy", spec.Name, p)
			}
			if err := CheckTheorem1(e); err != nil {
				t.Errorf("%s P=%d: %v", spec.Name, p, err)
			}
			if err := CheckTheorem2(e, p); err != nil {
				t.Errorf("%s P=%d: %v", spec.Name, p, err)
			}
			// Dedicated greedy length is also at least Tinf and at most
			// T1/P + Tinf (the classical Brent/greedy bound).
			if e.Length() < g.CriticalPath() {
				t.Errorf("%s P=%d: length %d < Tinf %d", spec.Name, p, e.Length(), g.CriticalPath())
			}
			if max := g.Work()/p + g.CriticalPath() + 1; e.Length() > max {
				t.Errorf("%s P=%d: length %d > T1/P+Tinf = %d", spec.Name, p, e.Length(), max)
			}
		}
	}
}

func TestBrentDedicatedBounds(t *testing.T) {
	for _, spec := range workload.SmallCatalog() {
		g := spec.Build()
		for _, p := range []int{1, 2, 4} {
			k := Dedicated{NumProcs: p}
			e := Brent(g, k, 10*g.Work()+100)
			if err := e.Validate(k); err != nil {
				t.Fatalf("%s P=%d: %v", spec.Name, p, err)
			}
			if err := CheckTheorem1(e); err != nil {
				t.Errorf("%s P=%d: %v", spec.Name, p, err)
			}
			if err := CheckTheorem2(e, p); err != nil {
				t.Errorf("%s P=%d: %v", spec.Name, p, err)
			}
			// Brent bound: sum over levels of ceil(|level|/p) <= T1/p + Tinf.
			want := 0
			for _, level := range g.Levels() {
				want += (len(level) + p - 1) / p
			}
			if e.Length() != want {
				t.Errorf("%s P=%d: Brent length %d, want %d", spec.Name, p, e.Length(), want)
			}
		}
	}
}

func TestBrentIsNotAlwaysGreedy(t *testing.T) {
	// On the spine workload, level-by-level scheduling leaves processors
	// idle even when deeper nodes are ready, so it is generally not greedy.
	g := workload.SpawnSpine(6, 8)
	k := Dedicated{NumProcs: 4}
	e := Brent(g, k, 10000)
	if err := e.Validate(k); err != nil {
		t.Fatal(err)
	}
	if e.IsGreedy() {
		t.Log("Brent happened to be greedy on this instance (allowed, but unexpected)")
	}
}

func TestLowerBoundKernel(t *testing.T) {
	for _, gap := range []int{0, 1, 3, 7} {
		for _, spec := range workload.SmallCatalog() {
			g := spec.Build()
			k := LowerBound{NumProcs: 4, Gap: gap}
			e := Greedy(g, k, (gap+1)*(g.Work()+g.CriticalPath())*2+100)
			if err := e.Validate(k); err != nil {
				t.Fatalf("%s gap=%d: %v", spec.Name, gap, err)
			}
			if min := k.MinLength(g.CriticalPath()); e.Length() < min {
				t.Errorf("%s gap=%d: length %d < forced minimum %d", spec.Name, gap, e.Length(), min)
			}
			// Theorem 1's second bound: length >= Tinf*P/P_A (within the
			// rounding slack of one period).
			pa := e.ProcessorAverage()
			bound := float64(g.CriticalPath()*k.P())/pa - float64(gap+1)
			if float64(e.Length()) < bound {
				t.Errorf("%s gap=%d: length %d < Tinf*P/P_A = %.1f", spec.Name, gap, e.Length(), bound)
			}
			if err := CheckTheorem1(e); err != nil {
				t.Errorf("%s gap=%d: %v", spec.Name, gap, err)
			}
		}
	}
}

func TestLowerBoundProcsPattern(t *testing.T) {
	k := LowerBound{NumProcs: 3, Gap: 2}
	want := []int{3, 0, 0, 3, 0, 0, 3}
	for i, w := range want {
		if got := k.ProcsAt(i); got != w {
			t.Errorf("ProcsAt(%d) = %d, want %d", i, got, w)
		}
	}
	if k.P() != 3 {
		t.Errorf("P = %d", k.P())
	}
}

func TestProcessorAverage(t *testing.T) {
	k := Figure2Kernel()
	if pa := ProcessorAverage(k, 10); pa != 2.0 {
		t.Errorf("PA over 10 = %v, want 2.0", pa)
	}
	if pa := ProcessorAverage(Dedicated{NumProcs: 5}, 7); pa != 5.0 {
		t.Errorf("PA dedicated = %v", pa)
	}
	defer func() {
		if recover() == nil {
			t.Error("ProcessorAverage(k, 0) did not panic")
		}
	}()
	ProcessorAverage(k, 0)
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	g := dag.Figure1()
	k := Dedicated{NumProcs: 2}
	e := Greedy(g, k, 1000)

	t.Run("wrong proc count", func(t *testing.T) {
		bad := *e
		bad.Procs = append([]int(nil), e.Procs...)
		bad.Procs[0] = 7
		if bad.Validate(k) == nil {
			t.Error("Validate accepted wrong proc count")
		}
	})
	t.Run("node twice", func(t *testing.T) {
		bad := *e
		bad.Steps = append([][]dag.NodeID(nil), e.Steps...)
		bad.Steps[1] = []dag.NodeID{e.Steps[0][0]}
		if bad.Validate(k) == nil {
			t.Error("Validate accepted duplicated node")
		}
	})
	t.Run("dependency violated", func(t *testing.T) {
		// Swap first two steps: executes x2 before x1.
		bad := &ExecSchedule{Graph: g,
			Steps: append([][]dag.NodeID(nil), e.Steps...),
			Procs: append([]int(nil), e.Procs...)}
		bad.Steps[0], bad.Steps[1] = bad.Steps[1], bad.Steps[0]
		if bad.Validate(k) == nil {
			t.Error("Validate accepted dependency violation")
		}
	})
	t.Run("missing node", func(t *testing.T) {
		bad := &ExecSchedule{Graph: g,
			Steps: append([][]dag.NodeID(nil), e.Steps[:len(e.Steps)-1]...),
			Procs: append([]int(nil), e.Procs[:len(e.Procs)-1]...)}
		if bad.Validate(k) == nil {
			t.Error("Validate accepted truncated schedule")
		}
	})
}

func TestGreedyPanicsOnStarvation(t *testing.T) {
	g := workload.Chain(5)
	k := Fixed{NumProcs: 1, Prefix: make([]int, 100)} // 0 procs for 100 steps
	defer func() {
		if recover() == nil {
			t.Fatal("Greedy did not panic when exceeding maxSteps")
		}
	}()
	Greedy(g, k, 50)
}

// Random kernels: greedy must satisfy both theorems on every workload.
func TestGreedyRandomKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(6)
		prefix := make([]int, 200)
		for i := range prefix {
			prefix[i] = rng.Intn(p + 1)
		}
		k := Fixed{NumProcs: p, Prefix: prefix}
		for _, spec := range workload.SmallCatalog() {
			g := spec.Build()
			e := Greedy(g, k, 100000)
			if err := e.Validate(k); err != nil {
				t.Fatalf("trial %d %s: %v", trial, spec.Name, err)
			}
			if err := CheckTheorem1(e); err != nil {
				t.Errorf("trial %d %s: %v", trial, spec.Name, err)
			}
			if err := CheckTheorem2(e, p); err != nil {
				t.Errorf("trial %d %s: %v", trial, spec.Name, err)
			}
		}
	}
}

func TestFigure2IdleAccounting(t *testing.T) {
	e := Greedy(dag.Figure1(), Figure2Kernel(), 100)
	// From the rendered schedule: steps 1,2,5,6,8,9,10 each have idle
	// processes (7 idle steps), with 9 idle tokens total.
	if got := e.IdleSteps(); got != 7 {
		t.Errorf("IdleSteps = %d, want 7", got)
	}
	if got := e.IdleTokens(); got != 9 {
		t.Errorf("IdleTokens = %d, want 9", got)
	}
	// The Theorem 2 proof's accounting: idle steps <= Tinf.
	if e.IdleSteps() > e.Graph.CriticalPath() {
		t.Errorf("idle steps %d exceed Tinf %d", e.IdleSteps(), e.Graph.CriticalPath())
	}
}

func TestBrentAndPDFUnderLowerBoundKernel(t *testing.T) {
	g := workload.FibDag(8)
	k := LowerBound{NumProcs: 3, Gap: 2}
	maxSteps := 3 * (g.Work() + g.CriticalPath()) * 2
	for name, e := range map[string]*ExecSchedule{
		"brent": Brent(g, k, maxSteps),
		"pdf":   PDF(g, k, maxSteps),
	} {
		if err := e.Validate(k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Length() < k.MinLength(g.CriticalPath()) {
			t.Errorf("%s: beat the forced lower bound", name)
		}
	}
}
