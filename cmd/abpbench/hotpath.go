package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"worksteal/internal/dag"
	"worksteal/internal/deque"
	"worksteal/internal/sched"
	"worksteal/internal/table"
	"worksteal/internal/workload"
)

// The hotpath experiment is the measurement half of the abporder analyzer:
// it times the deque owner operations (PushBottom/PopBottom, the paper's
// Figure 5 fast path) and the thief's PopTop CAS with sequentially
// consistent atomics versus the proof-gated RelaxedAtomics downgrades, and
// then runs a full spawn-tree graph under both modes so the microbenchmark
// delta can be read against end-to-end effect. Go's sync/atomic is always
// sequentially consistent, so the only instruction-level difference is the
// handful of owner loads and owner counter RMWs demoted to plain accesses;
// the expected delta is small and that smallness is itself the result.
//
// The -check flag turns the run into a regression gate: push/pop ns/op is
// compared against a previously written snapshot (BENCH_hotpath.json) and
// the process exits 1 if any (deque, mode) pair slowed by more than 10%.

type hotpathOpRow struct {
	Deque     string  `json:"deque"` // abp | chaselev
	Mode      string  `json:"mode"`  // seqcst | relaxed
	PushPopNs float64 `json:"pushpop_ns_per_op"`
	StealNs   float64 `json:"steal_ns_per_op"`
	// MultiStealNs is the contended counterpart of StealNs: GOMAXPROCS
	// thieves racing PopTop on one deque, aggregate thief time per
	// successful steal. This is the column the cache-line padding (PR 8,
	// abplayout) is accountable to — false sharing between the CAS'd
	// top/age word and its neighbors shows up here, not in the
	// single-threaded columns.
	MultiStealNs float64 `json:"multisteal_ns_per_op"`
}

// hotpathContended reports the multi-producer submission measurement: the
// public Submit path (shardRR rotation, injector reservation CAS, parked
// scan) under GOMAXPROCS concurrent producers, aggregate producer time
// per accepted submission. A pointer field in the report so pre-PR-8
// baselines unmarshal it as nil and the gate skips it.
type hotpathContended struct {
	Thieves   int     `json:"thieves"`
	Producers int     `json:"producers"`
	SubmitNs  float64 `json:"submit_ns_per_op"`
}

type hotpathGraphRow struct {
	Deque       string  `json:"deque"`
	Mode        string  `json:"mode"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	Steals      int64   `json:"steals"`
	TasksPerSec float64 `json:"tasks_per_sec"`
}

type hotpathReport struct {
	Experiment string `json:"experiment"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Reps       int    `json:"reps"`
	// CalibrationNs is the ns/op of a fixed serial spin measured in the
	// same run: the regression gate compares push/pop ns normalized by it,
	// so a snapshot from one machine remains a usable baseline on another
	// (and uniform container slowdowns cancel out).
	CalibrationNs float64           `json:"calibration_ns_per_op"`
	Ops           []hotpathOpRow    `json:"ops"`
	Contended     *hotpathContended `json:"contended,omitempty"`
	Graph         []hotpathGraphRow `json:"graph"`
}

// benchCalibrate times a fixed xorshift spin: a machine-speed yardstick
// with the same in-core, no-memory-traffic profile as the deque fast path.
func benchCalibrate(reps int) float64 {
	const iters = 1 << 22
	best := 0.0
	for r := 0; r < reps; r++ {
		x := uint64(2463534242)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		ns := float64(time.Since(start)) / float64(iters)
		if x == 0 { // defeat dead-code elimination
			panic("xorshift reached zero")
		}
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// ownerDeque is the owner-side surface shared by both lock-free deques.
type ownerDeque interface {
	PushBottom(*int) bool
	PopBottom() *int
	PopTop() *int
}

func newHotpathDeque(kind string, relaxed bool) ownerDeque {
	switch kind {
	case "abp":
		d := deque.NewWithCapacity[int](1 << 10)
		d.SetRelaxed(relaxed)
		return d
	case "chaselev":
		d := deque.NewChaseLev[int]()
		d.SetRelaxed(relaxed)
		return d
	}
	panic("unknown deque kind " + kind)
}

// benchPushPop times the owner's uncontended push/pop cycle in batches of
// 64 so both the push store->load and the pop store(bot)->load(age) Dekker
// handshake run against a non-empty deque. Best of reps wins.
//
//abp:owner the benchmark goroutine is the deque's only accessor
func benchPushPop(kind string, relaxed bool, reps int) float64 {
	const batch = 64
	const iters = 1 << 14 // 64 * 16384 = ~1M pushes and ~1M pops per rep
	node := new(int)
	best := 0.0
	for r := 0; r < reps; r++ {
		d := newHotpathDeque(kind, relaxed)
		start := time.Now()
		for i := 0; i < iters; i++ {
			for j := 0; j < batch; j++ {
				if !d.PushBottom(node) {
					panic("hotpath: push refused below capacity")
				}
			}
			for j := 0; j < batch; j++ {
				if d.PopBottom() == nil {
					panic("hotpath: owner pop lost a node")
				}
			}
		}
		ns := float64(time.Since(start)) / float64(2*batch*iters)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// benchSteal times the thief's PopTop CAS against a pre-filled deque. The
// steal path is deliberately untouched by RelaxedAtomics (the top/age CAS
// is the arbitration the paper's Figure 5 depends on), so this column
// doubles as a control: seqcst and relaxed should coincide.
//
//abp:owner the benchmark goroutine fills the deque it then steals from
func benchSteal(kind string, relaxed bool, reps int) float64 {
	const n = 1 << 10
	node := new(int)
	best := 0.0
	for r := 0; r < reps; r++ {
		var total time.Duration
		const rounds = 1 << 10
		for i := 0; i < rounds; i++ {
			// Fresh deque per round: the ABP array is not circular, so a
			// fully stolen deque cannot be refilled from the bottom. The
			// allocation and the refill stay outside the timed section.
			d := newHotpathDeque(kind, relaxed)
			for j := 0; j < n; j++ {
				if !d.PushBottom(node) {
					panic("hotpath: push refused below capacity")
				}
			}
			start := time.Now()
			for j := 0; j < n; j++ {
				if d.PopTop() == nil {
					panic("hotpath: steal lost a node")
				}
			}
			total += time.Since(start)
		}
		ns := float64(total) / float64(n*rounds)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// benchStealContended times the thieves' PopTop CAS with real contention:
// GOMAXPROCS (at least two) thief goroutines race on one pre-filled deque
// until every node is stolen. The reported figure is aggregate thief time
// per successful steal — wall time times the thief count divided by the
// steal count — so it prices both the CAS retries and any cache-line
// traffic the deque's layout induces. The deque is filled by this
// goroutine before the thieves start (the WaitGroup/channel pair is the
// publication edge), and no owner operation runs concurrently: pure
// thief-vs-thief arbitration, the §3.2 popTop contention.
//
//abp:owner the benchmark goroutine fills the deque before any thief starts
func benchStealContended(kind string, relaxed bool, reps int) (float64, int) {
	const n = 1 << 14
	thieves := runtime.GOMAXPROCS(0)
	if thieves < 2 {
		thieves = 2
	}
	// Several timed rounds per rep, best round wins: one contended round
	// lasts well under a scheduler timeslice, so whether a preemption
	// lands inside it is a coin flip — minimizing over rounds measures
	// the deque, not the flip.
	const rounds = 4
	node := new(int)
	best := 0.0
	for r := 0; r < reps*rounds; r++ {
		var d ownerDeque
		switch kind {
		case "abp":
			abp := deque.NewWithCapacity[int](n + 1)
			abp.SetRelaxed(relaxed)
			d = abp
		case "chaselev":
			cl := deque.NewChaseLev[int]()
			cl.SetRelaxed(relaxed)
			d = cl
		default:
			panic("unknown deque kind " + kind)
		}
		for j := 0; j < n; j++ {
			if !d.PushBottom(node) {
				panic("hotpath: push refused below capacity")
			}
		}
		var stolen atomic.Int64
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(thieves)
		for t := 0; t < thieves; t++ {
			//abp:ignore ownerescape the thief goroutines only call PopTop (the thief op) and join before the deque is dropped
			go func() {
				defer wg.Done()
				<-release
				for stolen.Load() < n {
					if d.PopTop() != nil {
						stolen.Add(1)
					}
				}
			}()
		}
		start := time.Now()
		close(release)
		wg.Wait()
		ns := float64(time.Since(start)) * float64(thieves) / float64(n)
		if s := stolen.Load(); s != n {
			panic(fmt.Sprintf("hotpath: contended steal lost nodes: %d of %d", s, n))
		}
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best, thieves
}

// benchSubmitContended times the public submission path under producer
// contention: a Pool in Serve mode, GOMAXPROCS producers each submitting
// no-op tasks through Submit while the workers drain them concurrently.
// Reported as aggregate producer time per accepted submission. The
// injector capacity is raised so backpressure rejects stay exceptional
// (an ErrOverloaded is retried after a yield and its cost stays in the
// measurement — shedding time is submission time).
func benchSubmitContended(reps int) (float64, int) {
	producers := runtime.GOMAXPROCS(0)
	if producers < 2 {
		producers = 2
	}
	const total = 1 << 14
	per := total / producers
	best := 0.0
	for r := 0; r < reps; r++ {
		p := sched.New(sched.Config{
			Workers:          runtime.GOMAXPROCS(0),
			InjectorCapacity: 1 << 15,
		})
		ctx, cancel := context.WithCancel(context.Background())
		serveDone := make(chan error, 1)
		go func() { serveDone <- p.Serve(ctx) }()
		// Wait until the pool is accepting: the first successful probe
		// submission marks the serving flag visible to this goroutine.
		for {
			h, err := p.Submit(func(*sched.Worker) {})
			if err == nil {
				if werr := h.Wait(); werr != nil {
					panic(werr)
				}
				break
			}
			runtime.Gosched()
		}
		// Several timed waves per serve session, best wave wins (same
		// preemption-noise reasoning as benchStealContended).
		const waves = 4
		for w := 0; w < waves; w++ {
			handles := make([][]*sched.Handle, producers)
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(producers)
			for i := 0; i < producers; i++ {
				go func(i int) {
					defer wg.Done()
					hs := make([]*sched.Handle, 0, per)
					<-release
					for j := 0; j < per; j++ {
						for {
							h, err := p.Submit(func(*sched.Worker) {})
							if err == nil {
								hs = append(hs, h)
								break
							}
							runtime.Gosched() // ErrOverloaded: shed and retry
						}
					}
					handles[i] = hs
				}(i)
			}
			start := time.Now()
			close(release)
			wg.Wait()
			ns := float64(time.Since(start)) * float64(producers) / float64(per*producers)
			for _, hs := range handles {
				for _, h := range hs {
					if err := h.Wait(); err != nil {
						panic(err)
					}
				}
			}
			if (r == 0 && w == 0) || ns < best {
				best = ns
			}
		}
		cancel()
		if err := <-serveDone; err != context.Canceled {
			panic(err)
		}
	}
	return best, producers
}

// stdlibSpin mirrors sched's per-node synthetic work for the stdlib
// contender (same xorshift loop, same dead-code-elimination sink).
var stdlibSpinSink atomic.Uint64

func stdlibSpin(n int) {
	if n <= 0 {
		return
	}
	x := uint64(n) | 1
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	stdlibSpinSink.Store(x)
}

// stdlibGraphRun executes the dag with the obvious non-stealing Go
// idiom: GOMAXPROCS worker goroutines ranging over one buffered channel
// of ready nodes, join counters enabling each node exactly once. This is
// the contender baseline the paper's per-processor-deque design is
// arguing against — every enqueue and dequeue crosses the same shared
// channel. The channel's capacity is the node count, so enabling sends
// never block; the worker that executes the final node closes the
// channel (every node's enabling sends happen before its own counted
// completion, so no send can follow the close).
func stdlibGraphRun(g *dag.Graph, workers, nodeWork int) time.Duration {
	n := g.NumNodes()
	remaining := make([]atomic.Int32, n)
	for i := 0; i < n; i++ {
		remaining[i].Store(int32(g.InDegree(dag.NodeID(i))))
	}
	ready := make(chan dag.NodeID, n)
	ready <- g.Root()
	var executed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for u := range ready {
				stdlibSpin(nodeWork)
				for _, e := range g.Succs(u) {
					if remaining[e.To].Add(-1) == 0 {
						ready <- e.To
					}
				}
				if executed.Add(1) == int64(n) {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got := executed.Load(); got != int64(n) {
		panic(fmt.Sprintf("hotpath: stdlib run executed %d of %d nodes", got, n))
	}
	return elapsed
}

// stdlibGraphRow is the GOMAXPROCS-matched goroutines+channel contender
// for the fib table: same dag, same per-node spin, no work stealing.
func stdlibGraphRow(nodeWork, reps int) hotpathGraphRow {
	g := workload.FibDag(18)
	workers := runtime.GOMAXPROCS(0)
	var bestD time.Duration
	for r := 0; r < reps; r++ {
		d := stdlibGraphRun(g, workers, nodeWork)
		if r == 0 || d < bestD {
			bestD = d
		}
	}
	return hotpathGraphRow{
		Deque:       "stdlib",
		Mode:        "goch",
		ElapsedNs:   int64(bestD),
		Steals:      0,
		TasksPerSec: float64(g.Work()) / bestD.Seconds(),
	}
}

// hotpathGraph runs the end-to-end spawn tree under one (deque, mode)
// configuration and reports best-of-reps wall time.
func hotpathGraph(kindName string, kind sched.DequeKind, relaxed bool, nodeWork, reps int) hotpathGraphRow {
	g := workload.FibDag(18)
	res := bestGraphRun(sched.GraphConfig{
		Graph:          g,
		Workers:        runtime.GOMAXPROCS(0),
		NodeWork:       nodeWork,
		Deque:          kind,
		RelaxedAtomics: relaxed,
	}, reps)
	mode := "seqcst"
	if relaxed {
		mode = "relaxed"
	}
	return hotpathGraphRow{
		Deque:       kindName,
		Mode:        mode,
		ElapsedNs:   int64(res.Elapsed),
		Steals:      res.Steals,
		TasksPerSec: float64(g.Work()) / res.Elapsed.Seconds(),
	}
}

// hotpathExperiment measures every (deque, mode) pair, renders the tables,
// writes the JSON snapshot, and — when checkPath names a previous snapshot
// — enforces the 10% push/pop regression gate against it.
func hotpathExperiment(nodeWork, reps int, outPath, checkPath string) {
	// In gate mode (-check without an explicit -out) the committed snapshot
	// is the baseline being compared against, so it must not be rewritten
	// by the same run that judges it.
	writeOut := true
	if outPath == "" {
		if checkPath != "" {
			writeOut = false
		}
		outPath = "BENCH_hotpath.json"
	}
	rep := hotpathReport{
		Experiment:    "hotpath",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Reps:          reps,
		CalibrationNs: benchCalibrate(reps),
	}

	thieves := 0
	otb := table.New(fmt.Sprintf("deque hot path (best of %d reps)", reps),
		"deque", "mode", "push+pop ns/op", "steal ns/op", "contended steal ns/op")
	for _, kind := range []string{"abp", "chaselev"} {
		for _, relaxed := range []bool{false, true} {
			mode := "seqcst"
			if relaxed {
				mode = "relaxed"
			}
			row := hotpathOpRow{
				Deque:     kind,
				Mode:      mode,
				PushPopNs: benchPushPop(kind, relaxed, reps),
				StealNs:   benchSteal(kind, relaxed, reps),
			}
			row.MultiStealNs, thieves = benchStealContended(kind, relaxed, reps)
			rep.Ops = append(rep.Ops, row)
			otb.Row(kind, mode, fmt.Sprintf("%.2f", row.PushPopNs), fmt.Sprintf("%.2f", row.StealNs),
				fmt.Sprintf("%.2f", row.MultiStealNs))
		}
	}
	otb.Render(os.Stdout)

	submitNs, producers := benchSubmitContended(reps)
	rep.Contended = &hotpathContended{Thieves: thieves, Producers: producers, SubmitNs: submitNs}
	fmt.Printf("contended submit: %.2f ns/op aggregate across %d producers (%d thieves in the steal column)\n",
		submitNs, producers, thieves)

	gtb := table.New(fmt.Sprintf("end to end: fib(18) spawn tree (workers=%d, nodework=%d)",
		runtime.GOMAXPROCS(0), nodeWork),
		"deque", "mode", "time", "steals", "tasks/s")
	for _, k := range []struct {
		name string
		kind sched.DequeKind
	}{{"abp", sched.DequeABP}, {"chaselev", sched.DequeChaseLev}} {
		for _, relaxed := range []bool{false, true} {
			row := hotpathGraph(k.name, k.kind, relaxed, nodeWork, reps)
			rep.Graph = append(rep.Graph, row)
			gtb.Row(row.Deque, row.Mode, time.Duration(row.ElapsedNs).Round(time.Microsecond),
				row.Steals, fmt.Sprintf("%.0f", row.TasksPerSec))
		}
	}
	// The contender: same dag, same spin, GOMAXPROCS goroutines draining
	// one shared channel instead of per-worker deques. Published alongside
	// the stealing rows (graph rows are reported, not gated).
	stdRow := stdlibGraphRow(nodeWork, reps)
	rep.Graph = append(rep.Graph, stdRow)
	gtb.Row(stdRow.Deque, stdRow.Mode, time.Duration(stdRow.ElapsedNs).Round(time.Microsecond),
		stdRow.Steals, fmt.Sprintf("%.0f", stdRow.TasksPerSec))
	gtb.Render(os.Stdout)
	fmt.Println("Go's sync/atomic is sequentially consistent, so RelaxedAtomics only demotes")
	fmt.Println("the statically proven owner-side loads and counter RMWs to plain accesses;")
	fmt.Println("steal ns/op is a control column (the top/age CAS is never relaxed).")

	if writeOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: marshal report: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(outPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "abpbench: write %s: %v\n", outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", outPath)
	}

	if checkPath != "" && !hotpathCheck(rep, checkPath) {
		os.Exit(1)
	}
}

// hotpathCheck compares the fresh measurements — single-threaded push/pop
// plus the contended multi-thief steal and multi-producer submit columns —
// against a committed snapshot and reports pairs that slowed by more than
// the 10% budget. Both sides are normalized by their own run's calibration
// spin, so the comparison survives a change of machine; a snapshot without
// calibration falls back to raw ns. Missing baseline columns are skipped
// (new configurations are not regressions), which is also what carries the
// gate across the snapshot transition that introduced the contended
// columns.
func hotpathCheck(cur hotpathReport, checkPath string) bool {
	data, err := os.ReadFile(checkPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: read baseline %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	var base hotpathReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "abpbench: parse baseline %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	curCal, baseCal := cur.CalibrationNs, base.CalibrationNs
	if curCal <= 0 || baseCal <= 0 {
		curCal, baseCal = 1, 1
	}
	const budget = 1.10
	ok := true
	gate := func(name string, curNs, baseNs float64) {
		if baseNs <= 0 || curNs <= 0 {
			return // column absent on one side: not a comparison
		}
		want := baseNs / baseCal
		ratio := (curNs / curCal) / want
		verdict := "ok"
		if ratio > budget {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("check %s: %.2f/spin vs baseline %.2f (%.2fx, budget %.2fx): %s\n",
			name, curNs/curCal, want, ratio, budget, verdict)
	}
	baseline := map[string]hotpathOpRow{}
	for _, row := range base.Ops {
		baseline[row.Deque+"/"+row.Mode] = row
	}
	for _, row := range cur.Ops {
		b, found := baseline[row.Deque+"/"+row.Mode]
		if !found {
			continue
		}
		gate(row.Deque+"/"+row.Mode+" push+pop", row.PushPopNs, b.PushPopNs)
		gate(row.Deque+"/"+row.Mode+" contended steal", row.MultiStealNs, b.MultiStealNs)
	}
	if cur.Contended != nil && base.Contended != nil {
		gate("contended submit", cur.Contended.SubmitNs, base.Contended.SubmitNs)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "abpbench: hot-path columns regressed beyond 10%% of %s\n", checkPath)
	}
	return ok
}
