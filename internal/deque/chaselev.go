package deque

import (
	"worksteal/internal/atomicx"
	"worksteal/internal/fault"
)

// Failpoints mirroring the ABP ones at the Chase-Lev instruction
// boundaries (internal/fault, DESIGN.md §9).
var (
	fpCLPushBottomAfterStore = fault.Register("chaselev.pushBottom.afterStore",
		"Chase-Lev pushBottom: element stored, new bottom not yet published")
	fpCLPopTopBeforeCAS = fault.Register("chaselev.popTop.beforeCAS",
		"Chase-Lev popTop: top and element loaded, CAS not yet issued")
	fpCLPopBottomBeforeCAS = fault.Register("chaselev.popBottom.beforeCAS",
		"Chase-Lev popBottom: racing thieves for the last item, CAS not yet issued")
)

// ChaseLev is the dynamic circular work-stealing deque of Chase and Lev
// (SPAA 2005), the direct successor of the ABP deque implemented here as
// the paper's natural "unbounded deque" extension. It removes the two ABP
// limitations this package's Deque inherits from Figure 5:
//
//   - capacity is unbounded: the owner grows the circular buffer when full
//     (thieves keep reading the old buffer safely; the garbage collector
//     handles reclamation, which is why this algorithm is so pleasant in Go);
//   - no tag is needed: top only ever increases (it is never reset), so the
//     ABA problem the ABP tag solves cannot arise.
//
// The owner contract is the same as Deque: PushBottom and PopBottom are
// owner-only, PopTop is for everyone.
type ChaseLev[T any] struct {
	// top is CAS-arbitrated between thieves (and popBottom's last-item
	// race), so it stays sequentially consistent.
	top atomicx.SCInt64 // next index to steal; monotonically increasing
	// The thieves' CAS line must not be invalidated by the owner's
	// per-push bottom stores (the abplayout false-sharing finding this
	// pad resolves: top is thief-CAS-hot, bottom is owner-store-hot).
	_ atomicx.CacheLinePad
	// bottom's store in popBottom is the first half of a Dekker
	// store(bottom)→load(top) handshake, so its stores stay sc; the
	// owner's reloads are downgradeable (LoadOwner below).
	bottom atomicx.SCInt64 // next index to push
	// bottom is stored on every owner push/pop while thieves re-read the
	// ring pointer on every steal; keeping the owner's store target off
	// the thieves' read line saves an invalidation per owner op.
	_ atomicx.CacheLinePad
	// array is published by the owner to thieves on grow; release/acquire
	// suffices (no store→load shape involves it).
	array atomicx.PublishPointer[clRing[T]]
	// relaxed gates the proof-checked owner-side downgrades; set via
	// SetRelaxed before the deque is shared.
	relaxed bool
}

// clRing is a power-of-two circular buffer. Slots only publish a node
// between processes; the top/bottom protocol supplies ordering.
type clRing[T any] struct {
	mask int64
	buf  []atomicx.PublishPointer[T]
}

func newCLRing[T any](logSize uint) *clRing[T] {
	n := int64(1) << logSize
	return &clRing[T]{mask: n - 1, buf: make([]atomicx.PublishPointer[T], n)}
}

func (r *clRing[T]) get(i int64) *T    { return r.buf[i&r.mask].Load() }
func (r *clRing[T]) put(i int64, v *T) { r.buf[i&r.mask].Store(v) }
func (r *clRing[T]) size() int64       { return r.mask + 1 }

// grow returns a ring of twice the size holding [top, bottom).
func (r *clRing[T]) grow(top, bottom int64) *clRing[T] {
	bigger := &clRing[T]{mask: 2*r.size() - 1, buf: make([]atomicx.PublishPointer[T], 2*r.size())}
	for i := top; i < bottom; i++ {
		bigger.put(i, r.get(i))
	}
	return bigger
}

// NewChaseLev returns an empty unbounded deque with a small initial buffer.
// The constructor owns the deque until it is published to thieves, which
// is why the initial array store counts as an owner-context write.
//
//abp:owner constructor: owns the deque until it escapes
func NewChaseLev[T any]() *ChaseLev[T] {
	d := &ChaseLev[T]{}
	d.array.Store(newCLRing[T](6)) // 64 slots to start
	return d
}

// SetRelaxed toggles the proof-gated owner-side atomics downgrades (plain
// reloads of bottom and array on the owner paths). Call before sharing.
func (d *ChaseLev[T]) SetRelaxed(relaxed bool) { d.relaxed = relaxed }

var _ Dequer[int] = (*ChaseLev[int])(nil)

// Len estimates the number of items (exact for the owner when quiescent).
//
//abp:nonblocking
func (d *ChaseLev[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return 0
	}
	return int(b - t)
}

// PushBottom appends node at the bottom, growing the buffer if needed. It
// always succeeds (the deque is unbounded) and returns true, satisfying the
// Dequer interface. Growing allocates, but never waits on another process.
//
// bottom and array are written only by the owner, so their reloads here
// are owner-relaxed; top stays a full atomic load (thieves CAS it).
//
//abp:owner deque owner: the worker this deque belongs to
//abp:nonblocking
func (d *ChaseLev[T]) PushBottom(node *T) bool {
	b := d.bottom.LoadOwner(d.relaxed)
	t := d.top.Load()
	a := d.array.LoadOwner(d.relaxed)
	if b-t >= a.size() {
		a = a.grow(t, b)
		d.array.Store(a)
	}
	a.put(b, node)
	fault.Point(fpCLPushBottomAfterStore)
	d.bottom.Store(b + 1)
	return true
}

// PopBottom removes and returns the bottommost item, or nil when empty.
//
// The initial bottom reload and the array read are owner-relaxed; the
// bottom STORE below stays sc — it is the Dekker store(bottom)→load(top)
// half that races popTop's CAS for the last item.
//
//abp:owner deque owner: the worker this deque belongs to
//abp:nonblocking
func (d *ChaseLev[T]) PopBottom() *T {
	b := d.bottom.LoadOwner(d.relaxed) - 1
	a := d.array.LoadOwner(d.relaxed)
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(t)
		return nil
	}
	node := a.get(b)
	if b > t {
		return node // more than one item: no race possible
	}
	// Single item: race thieves for it by advancing top.
	fault.Point(fpCLPopBottomBeforeCAS)
	if !d.top.CompareAndSwap(t, t+1) {
		node = nil // a thief won
	}
	d.bottom.Store(t + 1)
	return node
}

// PopTop steals the topmost item. Like the ABP popTop it may return nil
// under contention (relaxed semantics).
//
//abp:nonblocking
func (d *ChaseLev[T]) PopTop() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	a := d.array.Load()
	node := a.get(t)
	fault.Point(fpCLPopTopBeforeCAS)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return node
}
