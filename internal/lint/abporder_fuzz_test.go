package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// FuzzOrderClassifier feeds arbitrary type declarations to abporder's
// discipline classifier and asserts its contract: declDiscipline never
// panics, a negative answer is fully zero, a positive answer names one of
// the four disciplines with a wrapper name matching it, the result is
// deterministic, and one level of slice/array wrapping is transparent
// (a []atomicx.SCUint64 field declares the same discipline as the scalar).
// The declarations are checked twice — once as a package named atomicx,
// once under the import path sync/atomic — because those are exactly the
// two namespaces the classifier trusts: in the first, classification is
// driven by the SC/Publish/Plain name prefix; in the second, every named
// type must classify as the raw discipline regardless of its name.
func FuzzOrderClassifier(f *testing.F) {
	seeds := []string{
		"type SCUint64 struct{ v uint64 }\ntype S struct {\n\ta SCUint64\n\tb []SCUint64\n\tc [4]SCUint64\n}",
		"type PublishPointer[T any] struct{ p *T }\ntype W struct{ h PublishPointer[int] }",
		"type PlainBool struct{ b bool }\ntype X struct{ f PlainBool }",
		"type SC struct{}\ntype Publish struct{}\ntype Plain struct{}\ntype T struct {\n\ta SC\n\tb Publish\n\tc Plain\n}",
		"type SCInt32 int32\nvar Top SCInt32\nvar Ring []SCInt32",
		"type scLower struct{}\ntype T struct{ f scLower }",
		"type SCCell[T any] struct{ v T }\ntype Q struct{ cells []SCCell[*int] }",
		"type Deep struct{ m [][]SCBool }\ntype SCBool struct{ b bool }",
		"type A = SCUint32\ntype SCUint32 struct{ v uint32 }\ntype S struct{ f A }",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		for _, ns := range []struct {
			pkgName, pkgPath string
			rawOnly          bool
		}{
			{"atomicx", "worksteal/fuzz/atomicx", false},
			{"atomic", "sync/atomic", true},
		} {
			src := "package " + ns.pkgName + "\n\n" + body
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
			if err != nil || len(file.Imports) > 0 {
				// Not valid Go, or needs an importer this hermetic
				// harness does not wire up.
				continue
			}
			conf := types.Config{Error: func(error) {}}
			pkg, _ := conf.Check(ns.pkgPath, fset, []*ast.File{file}, nil)
			if pkg == nil {
				continue
			}

			assertDisc := func(tt types.Type) {
				disc, name, ok := declDiscipline(tt) // must not panic
				if !ok {
					if disc != "" || name != "" {
						t.Fatalf("negative answer not zero: (%q, %q, false) for %v", disc, name, tt)
					}
					return
				}
				wantPrefix := map[string]string{
					"raw":     "atomic.",
					"sc":      "atomicx.SC",
					"publish": "atomicx.Publish",
					"plain":   "atomicx.Plain",
				}[disc]
				if wantPrefix == "" {
					t.Fatalf("unknown discipline %q for %v", disc, tt)
				}
				if !strings.HasPrefix(name, wantPrefix) {
					t.Fatalf("discipline %q with mismatched wrapper name %q for %v", disc, name, tt)
				}
				if ns.rawOnly && disc != "raw" {
					t.Fatalf("type from %s classified %q, want raw: %v", ns.pkgPath, disc, tt)
				}
				d2, n2, ok2 := declDiscipline(tt)
				if d2 != disc || n2 != name || !ok2 {
					t.Fatalf("nondeterministic: (%q,%q) then (%q,%q) for %v", disc, name, d2, n2, tt)
				}
				// One level of slice/array wrapping is transparent for a
				// directly named wrapper type.
				if _, isNamed := tt.(*types.Named); isNamed {
					for _, wrapped := range []types.Type{
						types.NewSlice(tt),
						types.NewArray(tt, 8),
					} {
						dw, nw, okw := declDiscipline(wrapped)
						if dw != disc || nw != name || okw != ok {
							t.Fatalf("wrap changed answer: (%q,%q,%v) vs (%q,%q,%v) for %v",
								disc, name, ok, dw, nw, okw, wrapped)
						}
					}
				}
			}

			scope := pkg.Scope()
			for _, objName := range scope.Names() {
				switch obj := scope.Lookup(objName).(type) {
				case *types.TypeName:
					assertDisc(obj.Type())
					if st, isStruct := obj.Type().Underlying().(*types.Struct); isStruct {
						for i := 0; i < st.NumFields(); i++ {
							assertDisc(st.Field(i).Type())
						}
					}
				case *types.Var:
					assertDisc(obj.Type())
				}
			}
		}
	})
}
