package experiments

import (
	"io"
	"strings"
	"testing"
)

// Every experiment must run to completion and produce its table or figure.
func TestExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	cases := map[string]struct {
		run  func(w io.Writer)
		want []string
	}{
		"E1":  {E1Figure1, []string{"Figure 1", "x2 -> x5 (spawn)", "Tinf = 9"}},
		"E2":  {E2Greedy, []string{"length 10", "Theorem 1", "holds"}},
		"E3":  {E3LowerBound, []string{"E3", "chain", "len/bound"}},
		"E4":  {E4GreedyBound, []string{"E4", "true"}},
		"E8":  {E8Ablations, []string{"locked deque", "false", "yieldToAll", "true"}},
		"E9":  {E9Potential, []string{"Lemma 7", "Lemma 8", "true"}},
		"E10": {E10Structural, []string{"violations", "0"}},
		"E11": {E11RelatedWork, []string{"coscheduled", "space partition"}},
		"E12": {E12SpeedupVsPA, []string{"efficiency", "speedup"}},
		"E13": {E13Schedulers, []string{"pdf len", "serial spc"}},
		"E14": {E14Space, []string{"S1*P", "max space"}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			c.run(&sb)
			for _, want := range c.want {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("%s output missing %q:\n%s", name, want, sb.String())
				}
			}
		})
	}
}

func TestE5E6E7Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	var sb strings.Builder
	pts := E5Dedicated(&sb)
	if len(pts) == 0 {
		t.Fatal("E5 produced no run points")
	}
	pts = append(pts, E6Adversaries(&sb)...)
	E7Fit(&sb, pts)
	out := sb.String()
	for _, want := range []string{"E5", "speedup", "E6", "adaptive", "E7", "C1"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline output missing %q", want)
		}
	}
}

func TestGraphsHaveDistinctShapes(t *testing.T) {
	specs := Graphs()
	if len(specs) < 6 {
		t.Fatalf("only %d workloads", len(specs))
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		g := spec.Build()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if seen[spec.Name] {
			t.Errorf("duplicate workload name %s", spec.Name)
		}
		seen[spec.Name] = true
	}
}
