package analysis

import (
	"fmt"
	"math"

	"worksteal/internal/dag"
	"worksteal/internal/sim"
)

// StructuralChecker is a sim.Observer that verifies the structural lemma
// (Lemma 3) and its corollary (Corollary 4) against the live simulator
// state after every instruction:
//
//   - let u0 be a process's assigned node and x1..xk its deque from bottom
//     to top, with designated parents v0..vk: then vi is an ancestor of
//     vi-1 in the enabling tree, properly for i >= 2 (v1 may equal v0);
//   - consequently node weights satisfy w(u0) <= w(x1) < w(x2) < ... < w(xk).
//
// Deques whose owner has an operation in flight are skipped for that
// instant (their indices are transiently inconsistent mid-operation; the
// lemma is stated for the linearized execution).
type StructuralChecker struct {
	tinf int
	// Violations collects human-readable descriptions of any failures.
	Violations []string
	// Checks counts the deque states inspected.
	Checks int
	// maxViolations caps the report so a broken run does not OOM the test.
	maxViolations int
}

// NewStructuralChecker returns a checker for a computation with the given
// critical-path length.
func NewStructuralChecker(tinf int) *StructuralChecker {
	return &StructuralChecker{tinf: tinf, maxViolations: 20}
}

// OnRoundStart checks all processes at the round boundary.
func (c *StructuralChecker) OnRoundStart(e *sim.Engine, round int) { c.checkAll(e) }

// OnInstruction checks all processes after every instruction.
func (c *StructuralChecker) OnInstruction(e *sim.Engine, proc int) { c.checkAll(e) }

// Ok reports whether no violations were observed.
func (c *StructuralChecker) Ok() bool { return len(c.Violations) == 0 }

func (c *StructuralChecker) checkAll(e *sim.Engine) {
	if len(c.Violations) >= c.maxViolations {
		return
	}
	st := e.State()
	for pid, ps := range e.Snapshot() {
		if !ps.Stable || ps.Halted {
			continue
		}
		c.Checks++
		c.checkProc(st, pid, ps)
	}
}

func (c *StructuralChecker) checkProc(st *dag.State, pid int, ps sim.ProcSnapshot) {
	// Chain: u0 (assigned, optional), then x1..xk bottom to top.
	chain := make([]dag.NodeID, 0, len(ps.Deque)+1)
	if ps.Assigned != dag.None {
		chain = append(chain, ps.Assigned)
	}
	hasAssigned := ps.Assigned != dag.None
	chain = append(chain, ps.Deque...)
	if len(chain) < 2 {
		return
	}
	for i := 1; i < len(chain); i++ {
		a, b := chain[i-1], chain[i]
		// Weight ordering (Corollary 4): strictly increasing along the
		// deque; the assigned node may tie with the bottom node only in
		// weight derived from a shared designated parent.
		wa, wb := st.Weight(c.tinf, a), st.Weight(c.tinf, b)
		firstPair := i == 1 && hasAssigned
		if firstPair {
			if wb < wa {
				c.violate("proc %d: w(bottom %d)=%d < w(assigned %d)=%d", pid, b, wb, a, wa)
			}
		} else if wb <= wa {
			c.violate("proc %d: deque weights not strictly increasing: w(%d)=%d, then w(%d)=%d toward top",
				pid, a, wa, b, wb)
		}
		// Ancestor ordering (Lemma 3): parent(b) is an ancestor of
		// parent(a), properly except possibly for the first pair.
		pa, pb := st.DesignatedParent(a), st.DesignatedParent(b)
		if pa == dag.None {
			continue // a is the root; no parent to compare
		}
		if pb == dag.None {
			// b's parent is undefined only if b is the root, which cannot
			// sit above another ready node's parent chain.
			if b != st.Graph().Root() {
				c.violate("proc %d: node %d in deque has no designated parent", pid, b)
			}
			continue
		}
		if !st.IsEnablingAncestor(pb, pa) {
			c.violate("proc %d: parent(%d)=%d is not an ancestor of parent(%d)=%d",
				pid, b, pb, a, pa)
		}
		if !firstPair && pa == pb {
			c.violate("proc %d: designated parents of deque nodes %d and %d coincide (%d)",
				pid, a, b, pa)
		}
	}
}

func (c *StructuralChecker) violate(format string, args ...any) {
	if len(c.Violations) < c.maxViolations {
		c.Violations = append(c.Violations, fmt.Sprintf(format, args...))
	}
}

// TopHeavyChecker verifies Lemma 6 (Top-Heavy Deques) on live simulator
// states: for any process with a non-empty deque, the topmost node
// contributes at least 3/4 of the potential associated with that process
// (its deque contents plus its assigned node). Like the structural checker
// it skips processes with an owner operation in flight.
type TopHeavyChecker struct {
	tinf       int
	Checks     int
	Violations []string
	max        int
}

// NewTopHeavyChecker returns a checker for the given critical-path length.
func NewTopHeavyChecker(tinf int) *TopHeavyChecker {
	return &TopHeavyChecker{tinf: tinf, max: 20}
}

// Ok reports whether no violations were observed.
func (c *TopHeavyChecker) Ok() bool { return len(c.Violations) == 0 }

// OnRoundStart checks all processes.
func (c *TopHeavyChecker) OnRoundStart(e *sim.Engine, round int) { c.checkAll(e) }

// OnInstruction checks all processes after every instruction.
func (c *TopHeavyChecker) OnInstruction(e *sim.Engine, proc int) { c.checkAll(e) }

func (c *TopHeavyChecker) checkAll(e *sim.Engine) {
	if len(c.Violations) >= c.max {
		return
	}
	st := e.State()
	for pid, ps := range e.Snapshot() {
		if !ps.Stable || ps.Halted || len(ps.Deque) == 0 {
			continue
		}
		c.Checks++
		// Potential of the process: deque nodes at 3^(2w), assigned at
		// 3^(2w-1); all in log space.
		logTotal := math.Inf(-1)
		for _, u := range ps.Deque {
			logTotal = logAdd(logTotal, float64(2*st.Weight(c.tinf, u))*ln3)
		}
		if ps.Assigned != dag.None {
			logTotal = logAdd(logTotal, float64(2*st.Weight(c.tinf, ps.Assigned)-1)*ln3)
		}
		top := ps.Deque[len(ps.Deque)-1] // snapshot is bottom..top
		logTop := float64(2*st.Weight(c.tinf, top)) * ln3
		if logTop < logTotal+math.Log(0.75)-1e-9 {
			if len(c.Violations) < c.max {
				c.Violations = append(c.Violations,
					fmt.Sprintf("proc %d: top node %d holds only exp(%.3f) of exp(%.3f) potential",
						pid, top, logTop, logTotal))
			}
		}
	}
}
