package sim

import "worksteal/internal/dag"

// View exposes read-only execution state. Adaptive kernels may consult it
// freely; oblivious and benign kernels must restrict themselves to P,
// InstrLo and InstrHi (this is a convention the engine cannot enforce).
// Observers use the richer snapshot methods for analysis.
type View struct {
	e *Engine
}

// P returns the number of processes.
func (v *View) P() int { return v.e.cfg.P }

// InstrLo returns the minimum per-round instruction budget (2C).
func (v *View) InstrLo() int { return v.e.cfg.InstrLo }

// InstrHi returns the maximum per-round instruction budget (3C).
func (v *View) InstrHi() int { return v.e.cfg.InstrHi }

// Halted reports whether process p has observed termination and stopped.
func (v *View) Halted(p int) bool { return v.e.procs[p].phase == phHalted }

// HasAssigned reports whether process p currently holds an assigned node.
func (v *View) HasAssigned(p int) bool { return v.e.procs[p].assigned != dag.None }

// DequeSize returns the apparent size of process p's deque.
func (v *View) DequeSize(p int) int { return v.e.procs[p].deque.size() }

// IsThief reports whether process p is between work: no assigned node and
// currently yielding or stealing.
func (v *View) IsThief(p int) bool {
	ph := v.e.procs[p].phase
	return v.e.procs[p].assigned == dag.None && (ph == phYield || ph == phSteal)
}

// LockHolder returns the process currently holding the lock of p's deque,
// or -1 (always -1 for ABP deques).
func (v *View) LockHolder(p int) int { return v.e.procs[p].deque.lockHolder() }

// NodesExecuted returns how many dag nodes have executed so far.
func (v *View) NodesExecuted() int { return v.e.state.NumExecuted() }

// ProcSnapshot is the analysis-facing view of one process at an instant.
type ProcSnapshot struct {
	// Assigned is the process's assigned node, or dag.None.
	Assigned dag.NodeID
	// Deque lists the deque contents from bottom to top (the x1..xk order
	// of Lemma 3). Valid only when Stable.
	Deque []dag.NodeID
	// Stable is false while the owner has a deque operation in flight, in
	// which case Deque may be transiently inconsistent.
	Stable bool
	// Halted reports whether the process has stopped.
	Halted bool
	// Phase is the scheduling-loop phase name (for diagnostics).
	Phase string
}

// Snapshot captures all processes. Deque snapshots of processes with
// in-flight owner operations are marked unstable.
func (e *Engine) Snapshot() []ProcSnapshot {
	out := make([]ProcSnapshot, len(e.procs))
	for i, p := range e.procs {
		out[i] = ProcSnapshot{
			Assigned: p.assigned,
			Deque:    p.deque.snapshot(),
			Stable:   !p.busyWithDeque(),
			Halted:   p.phase == phHalted,
			Phase:    p.phase.String(),
		}
	}
	return out
}

// State returns the live dag execution state (read-only use only).
func (e *Engine) State() *dag.State { return e.state }

// Graph returns the computation being executed.
func (e *Engine) Graph() *dag.Graph { return e.g }

// Done reports whether the final node has executed.
func (e *Engine) Done() bool { return e.done }

// ThrowsSoFar returns the cumulative number of throws across all processes,
// for per-round phase analysis by observers.
func (e *Engine) ThrowsSoFar() int {
	n := 0
	for _, p := range e.procs {
		n += p.throws
	}
	return n
}

// StepsSoFar returns the number of kernel steps executed so far.
func (e *Engine) StepsSoFar() int { return e.steps }

// P returns the number of processes.
func (e *Engine) P() int { return e.cfg.P }

// LastExecuted returns the most recently executed node, or dag.None before
// the first execution. Observers use it from OnInstruction to attribute
// node executions to steps.
func (e *Engine) LastExecuted() dag.NodeID {
	if e.state.NumExecuted() == 0 {
		return dag.None
	}
	return e.lastExec
}
