// Worker lifecycle: backoff and parking for idle workers.
//
// The paper's Figure 3 loop spins forever — pop, yield, steal — because in
// its model the kernel already charges a spinning thief's steal attempts
// against the schedule's bound; burning the processor is the analysis's
// problem, not the program's. On a live machine it is very much the
// program's problem: every idle worker pins a full core at 100%. This file
// adds the standard remedy, the one Go's own runtime (findRunnable ->
// stopm/wakep) and ForkJoinPool use atop the same ABP-style deques: after
// parkThreshold consecutive failed steal attempts a worker backs off with
// exponentially growing sleeps, then parks on a per-worker token channel.
// Spawn wakes one parked worker whenever it makes new work stealable.
//
// Lost-wakeup freedom is the usual Dekker argument over Go's sequentially
// consistent atomics: a producer pushes (an atomic store inside the deque)
// and then reads the parked flags; a parker publishes its parked flag and
// then re-scans every deque. Whichever order the two interleave in, one
// side must observe the other, so a task pushed while a worker is going to
// sleep either earns that worker a wake token or is seen by its pre-block
// recheck. Spurious wake tokens are harmless (the worker scans, finds
// nothing, and parks again); only lost ones would be fatal.
//
// Termination needs no flag-spinning either: the worker whose task
// decrement drives pending to zero closes the run's done channel, waking
// every parked worker at once so the pool shuts down cleanly — the
// stopped flag is now only the loop-exit condition, never a spin target.
//
// The paper's yield discipline is preserved where it matters: in the hot
// phase (below the threshold) a thief still calls runtime.Gosched between
// steal attempts, exactly Figure 3's yield-then-steal round. Parking only
// ever happens when every deque is observably empty, i.e. when the steal
// the paper would have made was guaranteed to fail anyway.
package sched

import (
	"runtime"
	"time"

	"worksteal/internal/fault"
)

const (
	// backoffSteps sleeps of backoffBase<<step precede parking
	// (1us..64us, ~127us total): work arriving shortly after a worker
	// goes idle is picked up with microsecond latency, while longer
	// idle gaps cost one park/wake round trip.
	backoffSteps = 7
	backoffBase  = time.Microsecond
)

// loop is the Figure 3 scheduling loop — pop the bottom of the local
// deque; when empty, yield and steal from the top of a random victim —
// wrapped in the backoff/parking lifecycle described above.
//
//abp:owner the worker goroutine is its deque's single owner for the run
func (w *Worker) loop() {
	defer w.pool.wg.Done()
	defer w.recoverLoopPanic()
	if w.pool.cfg.Pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	fault.Point(fpLoopEnter)
	// Root fallback from submitRoot. Skipped when the run is already
	// aborted (e.g. a pre-cancelled RunContext), leaving the handoff in
	// place for drain to count rather than executing it into a dead run.
	if t := w.handoff; t != nil && !w.pool.stopped.Load() {
		w.handoff = nil
		w.exec(t)
	}
	fails := 0
	for !w.pool.stopped.Load() {
		w.progress.Add(1)
		t := w.dq.PopBottom()
		if t == nil {
			if !w.pool.cfg.DisableYield {
				w.yields.Add(1)
				runtime.Gosched()
			}
			fault.Point(fpLoopBeforeSteal)
			t = w.stealOnce()
		}
		if t != nil {
			fails = 0
			w.exec(t)
			continue
		}
		fails++
		if w.idleWait(fails) {
			fails = 0 // parked and woke: restart the hot phase
		}
	}
}

// recoverLoopPanic is the recover-and-terminate path for a panic raised by
// the loop machinery itself — outside exec's per-task recover, e.g. an
// injected fault.Point panic between tasks. Without it such a panic would
// escape the worker goroutine and crash the process (and, were it somehow
// swallowed, strand pending above zero and deadlock wg.Wait for the other
// workers). Instead it aborts the run like a task panic: stopped stops
// every loop, the abort close wakes parked workers and blocked Joins, and
// Run/RunContext re-panics with the original value after wg.Wait.
func (w *Worker) recoverLoopPanic() {
	if r := recover(); r != nil {
		w.pool.recordPanic(r)
	}
}

// idleWait escalates an idle worker through the lifecycle: hot spinning
// below parkThreshold, then exponential sleeps, then parking. It reports
// whether the worker parked (the caller restarts the hot phase).
func (w *Worker) idleWait(fails int) bool {
	p := w.pool
	if p.cfg.DisableParking {
		return false
	}
	step := fails - p.parkThreshold
	if step < 0 {
		return false
	}
	if step < backoffSteps {
		start := time.Now()
		time.Sleep(backoffBase << step)
		w.backoffNanos.Add(int64(time.Since(start)))
		return false
	}
	return w.park()
}

// park blocks the worker until new work is signalled or the run ends. It
// publishes the parked flag before re-checking for work (the Dekker
// protocol with signalWork) so a concurrent Spawn cannot be missed. The
// handshake directive makes abpvet verify that ordering: the parked store
// must dominate the anyVisibleWork re-scan, and every access to the flag
// must be atomic.
//
//abp:handshake store=parked load=anyVisibleWork
func (w *Worker) park() bool {
	p := w.pool
	p.idle.Add(1)
	w.parked.Store(true)
	if p.stopped.Load() || w.anyVisibleWork() {
		w.parked.Store(false)
		p.idle.Add(-1)
		return false
	}
	w.parks.Add(1)
	// The window the abort/park chaos test targets: parked is published
	// and the re-check passed, but the worker is not yet blocked. A
	// suspension here models preemption between those two instructions; an
	// abort or done close arriving meanwhile must still wake the worker.
	fault.Point(fpParkBeforeSleep)
	select {
	case <-w.parkCh:
		w.wakes.Add(1)
	case <-p.done: // run terminated: pending hit zero
	case <-p.abort: // run aborted by a task panic
	}
	w.parked.Store(false)
	p.idle.Add(-1)
	return true
}

// signalWork wakes one parked worker, if any. The caller must already have
// made the new work visible (pushed it onto a deque); see the Dekker
// argument in the file comment. The token channel has capacity one, so a
// signal to a worker with a pending token is absorbed rather than lost:
// the send sits in a select with default and can never block the spawner.
//
//abp:nonblocking
func (p *Pool) signalWork() {
	if p.idle.Load() == 0 {
		return
	}
	for _, w := range p.workers {
		if w.parked.Load() {
			select {
			case w.parkCh <- struct{}{}:
			default:
			}
			return
		}
	}
}
