package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzBuildCFG feeds arbitrary function bodies to the CFG builder and
// asserts the structural invariants every client leans on: construction
// never panics, every indexed node belongs to the block that indexes it,
// dominator sets are well-formed (each block dominates itself; the entry
// dominates every reachable block), and the reachability closure agrees
// with the edges. The seeds cover the control-flow shapes that have bitten
// hand-written CFG builders: goto into and out of loops, labeled
// break/continue, select, fallthrough, and type switches.
func FuzzBuildCFG(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"for i := 0; i < 10; i++ {\n\tif i == 5 {\n\t\tbreak\n\t}\n}",
		"outer:\nfor {\n\tfor {\n\t\tcontinue outer\n\t}\n}",
		"loop:\nfor i := 0; i < 3; i++ {\n\tswitch i {\n\tcase 0:\n\t\tbreak loop\n\tcase 1:\n\t\tcontinue loop\n\t}\n}",
		"i := 0\nstart:\ni++\nif i < 10 {\n\tgoto start\n}",
		"goto end\nfor {\n}\nend:\nreturn",
		"ch := make(chan int)\nselect {\ncase v := <-ch:\n\t_ = v\ncase ch <- 1:\ndefault:\n}",
		"ch := make(chan int)\nfor v := range ch {\n\t_ = v\n}",
		"switch x := 3; x {\ncase 1:\n\tfallthrough\ncase 2:\n\treturn\ndefault:\n\tx++\n}",
		"var v any\nswitch t := v.(type) {\ncase int:\n\t_ = t\ncase string:\n\treturn\n}",
		"defer func() {}()\ngo func() {\n\tfor {\n\t}\n}()",
		"if a := 1; a > 0 {\n\treturn\n} else if a < 0 {\n\tgoto done\n}\ndone:",
		"for {\n\tselect {\n\tdefault:\n\t\tbreak\n\t}\n\tbreak\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // not valid Go: nothing for the builder to build
		}
		var fd *ast.FuncDecl
		for _, d := range file.Decls {
			if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "f" {
				fd = x
			}
		}
		if fd == nil || fd.Body == nil {
			t.Skip()
		}

		g := buildCFG(fd.Body) // must not panic
		if g == nil || g.entry == nil {
			t.Fatal("buildCFG returned a nil graph or entry")
		}

		// Node index consistency: every indexed node sits in its block's
		// node list at the recorded position.
		for n, blk := range g.nodeBlock {
			i, ok := g.nodeIndex[n]
			if !ok || i < 0 || i >= len(blk.nodes) || blk.nodes[i] != n {
				t.Fatalf("node %T mis-indexed: index %d in block %d", n, i, blk.index)
			}
		}
		// Edge symmetry: succs and preds mirror each other.
		for _, blk := range g.blocks {
			for _, s := range blk.succs {
				found := false
				for _, p := range s.preds {
					if p == blk {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("edge %d->%d missing from preds", blk.index, s.index)
				}
			}
		}

		// Dominators: every block dominates itself, and the entry
		// dominates every block reachable from it.
		dom := g.dominators()
		reachable := map[int]bool{g.entry.index: true}
		frontier := []*block{g.entry}
		for len(frontier) > 0 {
			b := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, s := range b.succs {
				if !reachable[s.index] {
					reachable[s.index] = true
					frontier = append(frontier, s)
				}
			}
		}
		for _, blk := range g.blocks {
			i := blk.index
			if !dom[i][i] {
				t.Fatalf("block %d does not dominate itself", i)
			}
			if reachable[i] && !dom[i][g.entry.index] {
				t.Fatalf("entry does not dominate reachable block %d", i)
			}
		}

		// Reachability closure agrees with direct edges.
		reach := g.reachability()
		for _, blk := range g.blocks {
			for _, s := range blk.succs {
				if !reach[blk.index][s.index] {
					t.Fatalf("closure misses direct edge %d->%d", blk.index, s.index)
				}
			}
		}
	})
}
