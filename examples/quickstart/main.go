// Quickstart: the smallest useful program on the work-stealing pool.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"worksteal/internal/sched"
)

func main() {
	// A pool of workers; each worker owns a non-blocking ABP deque and
	// steals from random victims when idle, per Arora-Blumofe-Plaxton.
	pool := sched.New(sched.Config{Workers: 4})

	// Run blocks until the root task and everything it spawned finish.
	var sum int64
	pool.Run(func(w *sched.Worker) {
		// Data parallelism: a parallel loop...
		squares := make([]int64, 1000)
		sched.ParallelFor(w, 0, len(squares), 32, func(i int) {
			squares[i] = int64(i) * int64(i)
		})

		// ...and a parallel reduction over the results.
		sum = sched.Reduce(w, 0, len(squares), 32,
			func(i int) int64 { return squares[i] },
			func(a, b int64) int64 { return a + b })
	})
	fmt.Println("sum of squares 0..999 =", sum)

	// Task parallelism: fork two computations and join their results.
	var hi, lo string
	pool.Run(func(w *sched.Worker) {
		future := sched.Fork(w, func(*sched.Worker) string { return "world" })
		hi = "hello"
		lo = future.Join(w) // runs other tasks while waiting
	})
	fmt.Println(hi, lo)

	// The full counter table: besides tasks/steals it shows the idle
	// lifecycle (parks, wakes, backoff) — idle workers park instead of
	// spinning, so an idle pool costs ~0 CPU.
	fmt.Print(pool.Stats())
}
