package lint

import (
	"go/ast"
	"go/types"
)

// OwnerOnly enforces the deque ownership contract of paper Section 3.2: a
// "good set of invocations" has PushBottom and PopBottom called only by the
// deque's single owner. Ownership is not a property go/types can see, so it
// is declared: a function carrying the //abp:owner directive is an audited
// owner context (the worker loop that owns its deque, or a quiescent phase
// such as the between-runs drain). The analyzer builds the package's static
// call graph and flags every reference to a PushBottom or PopBottom method
// — call or method value — whose lexically enclosing top-level function is
// neither annotated nor statically reachable from an annotated function.
//
// The check is per-package and static: dynamic dispatch through function
// values and cross-package calls do not extend the reachable set, so a
// helper invoked only via a task closure needs its own //abp:owner
// annotation (with a comment arguing why it runs on the owner goroutine).
// That is deliberate — every new owner context should be written down and
// reviewed, exactly as TR-99-11 reviews the good-set assumption.
var OwnerOnly = &Analyzer{
	Name: "owneronly",
	Doc:  "requires PushBottom/PopBottom references to be reachable from an //abp:owner-annotated function",
	Run:  runOwnerOnly,
}

func runOwnerOnly(pass *Pass) error {
	decls := declsOf(pass.Files)
	declOf := map[*types.Func]*ast.FuncDecl{}
	for _, fd := range decls {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			declOf[fn] = fd
		}
	}

	// Static same-package call graph over top-level declarations, closures
	// attributed to the declaration containing them.
	calls := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
				if target, ok := declOf[callee]; ok {
					calls[fd] = append(calls[fd], target)
				}
			}
			return true
		})
	}

	owned := map[*ast.FuncDecl]bool{}
	var frontier []*ast.FuncDecl
	for _, fd := range decls {
		if hasDirective(fd.Doc, "//abp:owner") {
			owned[fd] = true
			frontier = append(frontier, fd)
		}
	}
	for len(frontier) > 0 {
		fd := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, callee := range calls[fd] {
			if !owned[callee] {
				owned[callee] = true
				frontier = append(frontier, callee)
			}
		}
	}

	for _, fd := range decls {
		if owned[fd] || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "PushBottom" && sel.Sel.Name != "PopBottom" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s called outside an owner context: %s is not reachable from any //abp:owner function (single-owner contract, paper §3.2)",
				sel.Sel.Name, funcName(fd))
			return true
		})
	}
	return nil
}
