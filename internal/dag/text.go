package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serializes the graph in a line-oriented text format that
// ReadText parses back, so computation dags can be exchanged between the
// command-line tools (abpsim -dagfile) and external generators:
//
//	worksteal-dag v1
//	label <text>
//	nodes <count> threads <count>
//	node <id> <thread>          (one per node, in id order)
//	edge <from> <to> <kind>     (spawn and sync edges only; continuation
//	                             edges are implied by thread chains)
//	end
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "worksteal-dag v1")
	fmt.Fprintf(bw, "label %s\n", g.label)
	fmt.Fprintf(bw, "nodes %d threads %d\n", len(g.nodes), len(g.threads))
	for i := range g.nodes {
		fmt.Fprintf(bw, "node %d %d\n", i, g.nodes[i].Thread)
	}
	for _, e := range g.Edges() {
		if e.Kind == Continuation {
			continue // implied by thread chain order
		}
		fmt.Fprintf(bw, "edge %d %d %s\n", e.From, e.To, e.Kind)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ReadText parses the WriteText format and reconstructs the graph,
// validating it fully.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := func() (string, error) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "#") {
				return s, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	hdr, err := line()
	if err != nil {
		return nil, fmt.Errorf("dag: reading header: %w", err)
	}
	if hdr != "worksteal-dag v1" {
		return nil, fmt.Errorf("dag: bad header %q", hdr)
	}
	lbl, err := line()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(lbl, "label") {
		return nil, fmt.Errorf("dag: expected label line, got %q", lbl)
	}
	label := strings.TrimSpace(strings.TrimPrefix(lbl, "label"))

	counts, err := line()
	if err != nil {
		return nil, err
	}
	var nNodes, nThreads int
	if _, err := fmt.Sscanf(counts, "nodes %d threads %d", &nNodes, &nThreads); err != nil {
		return nil, fmt.Errorf("dag: bad counts line %q: %w", counts, err)
	}
	if nNodes < 1 || nThreads < 1 || nNodes > 1<<28 {
		return nil, fmt.Errorf("dag: implausible counts %d nodes, %d threads", nNodes, nThreads)
	}

	b := NewBuilder()
	b.SetLabel(label)
	for t := 0; t < nThreads; t++ {
		b.NewThread()
	}
	for i := 0; i < nNodes; i++ {
		s, err := line()
		if err != nil {
			return nil, err
		}
		var id, thread int
		if _, err := fmt.Sscanf(s, "node %d %d", &id, &thread); err != nil {
			return nil, fmt.Errorf("dag: bad node line %q: %w", s, err)
		}
		if id != i {
			return nil, fmt.Errorf("dag: node ids must be dense and ordered; got %d at position %d", id, i)
		}
		if thread < 0 || thread >= nThreads {
			return nil, fmt.Errorf("dag: node %d references thread %d of %d", id, thread, nThreads)
		}
		if got := b.AddNode(ThreadID(thread)); got != NodeID(i) {
			return nil, fmt.Errorf("dag: internal id mismatch: %d != %d", got, i)
		}
	}
	for {
		s, err := line()
		if err != nil {
			return nil, err
		}
		if s == "end" {
			break
		}
		fields := strings.Fields(s)
		if len(fields) != 4 || fields[0] != "edge" {
			return nil, fmt.Errorf("dag: bad edge line %q", s)
		}
		from, err1 := strconv.Atoi(fields[1])
		to, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || from < 0 || from >= nNodes || to < 0 || to >= nNodes {
			return nil, fmt.Errorf("dag: bad edge endpoints %q", s)
		}
		var kind EdgeKind
		switch fields[3] {
		case "spawn":
			kind = Spawn
		case "sync":
			kind = Sync
		default:
			return nil, fmt.Errorf("dag: bad edge kind %q (continuations are implied)", fields[3])
		}
		b.addEdge(NodeID(from), NodeID(to), kind)
	}
	return b.Build()
}
