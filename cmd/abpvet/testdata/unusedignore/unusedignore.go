// Package unusedignore is a CLI test fixture: its single //abp:ignore
// directive suppresses nothing, so abpvet -unused-ignores must flag it.
package unusedignore

//abp:ignore mustcheck nothing here ever produced a finding
var x = 1

var _ = x
