// SubmitWithRetry: bounded, jittered retries over the admission gate.
//
// ErrOverloaded is the service's backpressure signal — transient by
// design: the injector is momentarily full and the fleet is draining it.
// Callers that would rather wait a little than shed write the same retry
// loop every time; this file provides the canonical one. Only
// ErrOverloaded is retried. Every other outcome is final: ErrNotServing
// and ErrDraining mean admission is closed, a context error means the
// caller gave up, and task panics are not Submit errors at all (they
// surface from Handle.Wait, and retrying a submission that ran would
// execute it twice).
package sched

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy bounds SubmitWithRetry. The zero value is a sane default:
// 4 attempts, 100µs base backoff, 10ms cap.
type RetryPolicy struct {
	// MaxAttempts is the total number of Submit attempts (the first try
	// plus retries). 0 means 4.
	MaxAttempts int
	// BaseDelay is the nominal backoff before the first retry; it doubles
	// per attempt up to MaxDelay. 0 means 100µs.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. 0 means 10ms.
	MaxDelay time.Duration
	// Seed seeds the jitter draw; 0 means a time-free fixed default (two
	// equal policies retry on identical schedules).
	Seed int64
}

// SubmitWithRetry submits fn, retrying with jittered exponential backoff
// while Submit reports ErrOverloaded, up to the policy's attempt bound or
// until ctx ends. Each backoff sleeps a uniformly jittered duration in
// [d/2, d] (full-jitter halves herd synchronization between concurrent
// submitters), selecting against ctx so cancellation cuts the wait short.
// The return values are exactly SubmitContext's: the final attempt's
// handle and error — ErrOverloaded only after every attempt was shed.
func (p *Pool) SubmitWithRetry(ctx context.Context, fn func(*Worker), pol RetryPolicy) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := pol.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	base := pol.BaseDelay
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	maxD := pol.MaxDelay
	if maxD <= 0 {
		maxD = 10 * time.Millisecond
	}
	if maxD < base {
		maxD = base
	}
	seed := pol.Seed
	if seed == 0 {
		seed = 0x5EED2E72
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 1; ; attempt++ {
		h, err := p.SubmitContext(ctx, fn)
		if !errors.Is(err, ErrOverloaded) || attempt >= attempts {
			return h, err
		}
		d := base << (attempt - 1)
		if d > maxD || d <= 0 { // <= 0: shift overflow at absurd attempt counts
			d = maxD
		}
		d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}
