package sched

import (
	"testing"
	"unsafe"

	"worksteal/internal/atomicx"
)

// Dynamic mirror of the abplayout analyzer for the scheduler's hot
// structs (see internal/deque/layout_test.go for the deque halves): the
// declared line isolation is asserted with unsafe.Offsetof on the host
// architecture.

func layoutLine(off uintptr) uintptr { return off / atomicx.CacheLineSize }

// TestInjectorLayoutPins asserts the producer and consumer positions of
// the MPMC injector live on distinct cache lines, so a submission burst
// and a draining worker do not false-share.
func TestInjectorLayoutPins(t *testing.T) {
	var q injector
	enq := unsafe.Offsetof(q.enq)
	deq := unsafe.Offsetof(q.deq)
	if layoutLine(enq) == layoutLine(deq) {
		t.Errorf("enq (offset %d) and deq (offset %d) share a cache line", enq, deq)
	}
}

// TestWorkerLayoutPins asserts the parked flag — the word every
// producer's signalWork scans — is isolated from both the cold
// per-worker wiring before it and the owner-hot progress/stat counters
// after it.
func TestWorkerLayoutPins(t *testing.T) {
	var w Worker
	parked := unsafe.Offsetof(w.parked)
	parkCh := unsafe.Offsetof(w.parkCh)
	run := unsafe.Offsetof(w.run)
	progress := unsafe.Offsetof(w.progress)
	tasksRun := unsafe.Offsetof(w.tasksRun)
	if layoutLine(parked) == layoutLine(parkCh) || layoutLine(parked) == layoutLine(run) {
		t.Errorf("parked (offset %d) shares a line with the worker wiring (parkCh %d, run %d)", parked, parkCh, run)
	}
	if layoutLine(parked) == layoutLine(progress) || layoutLine(parked) == layoutLine(tasksRun) {
		t.Errorf("parked (offset %d) shares a line with the owner counters (progress %d, tasksRun %d)", parked, progress, tasksRun)
	}
	// state is the fleet-membership word Resize CASes against the worker's
	// own retire CAS — an arbitration word like parked, and like parked it
	// must not share a line with the wake flag or the owner counters.
	state := unsafe.Offsetof(w.state)
	if layoutLine(state) == layoutLine(parked) || layoutLine(state) == layoutLine(progress) {
		t.Errorf("state (offset %d) shares a line with parked (%d) or progress (%d)", state, parked, progress)
	}
}

// TestPoolLayoutPins asserts the four arbitration words — running's
// session CAS, shardRR's per-submission Add, wakeRR's per-signal Add,
// idle's park/signal reads — each sit on their own line, clear of each
// other and of the shared counters.
func TestPoolLayoutPins(t *testing.T) {
	var p Pool
	offs := map[string]uintptr{
		"running":  unsafe.Offsetof(p.running),
		"shardRR":  unsafe.Offsetof(p.shardRR),
		"wakeRR":   unsafe.Offsetof(p.wakeRR),
		"idle":     unsafe.Offsetof(p.idle),
		"stopped":  unsafe.Offsetof(p.stopped),
		"dropped":  unsafe.Offsetof(p.dropped),
		"draining": unsafe.Offsetof(p.draining),
		"fleet":    unsafe.Offsetof(p.fleet),
	}
	for _, hot := range []string{"running", "shardRR", "wakeRR", "idle", "draining", "fleet"} {
		for name, off := range offs {
			if name == hot {
				continue
			}
			if layoutLine(offs[hot]) == layoutLine(off) {
				t.Errorf("%s (offset %d) shares a cache line with %s (offset %d)", hot, offs[hot], name, off)
			}
		}
	}
}
