// Package handshake is the analysistest fixture for the handshake
// analyzer: inside an //abp:handshake function, the named store must
// dominate every named load (the Dekker publish-before-check order), and
// every access to the named variables must be a sync/atomic operation.
package handshake

import "sync/atomic"

type worker struct {
	parked atomic.Bool
	flag   bool
}

func (w *worker) anyWork() bool { return false }

type shared struct{ f uint32 }

func peers(*shared) int { return 0 }

// good is the canonical order: publish the flag, then re-check for work.
//
//abp:handshake store=parked load=anyWork
func good(w *worker) {
	w.parked.Store(true)
	if w.anyWork() { // accepted: the load is dominated by the store
		w.parked.Store(false)
	}
}

// reversed checks before publishing on one path: the load in the branch
// can run before any store, so a concurrent producer can be missed.
//
//abp:handshake store=parked load=anyWork
func reversed(w *worker, race bool) {
	if race {
		_ = w.anyWork() // want `handshake load of anyWork is not dominated by the store of parked`
	}
	w.parked.Store(true)
	_ = w.anyWork() // accepted: dominated on every path
}

// plainFlag performs the handshake through a non-atomic field: the
// ordering holds, but without seq-cst atomics the Dekker argument is void.
//
//abp:handshake store=flag load=anyWork
func plainFlag(w *worker) {
	w.flag = true   // want `plain \(non-atomic\) access to handshake variable flag`
	_ = w.anyWork() // accepted: still dominated (by the plain store)
}

// missing declares a handshake whose publish side does not exist.
//
//abp:handshake store=parked load=anyWork
func missing(w *worker) { // want `store=parked matches no store or call in missing`
	_ = w.anyWork() // accepted: with no store at all, only the missing-store finding fires
}

// malformed directives are themselves findings, not silently inert.
//
//abp:handshake store=parked
func malformed(w *worker) { // want `malformed //abp:handshake directive`
	w.parked.Store(true)
	_ = w.anyWork()
}

// fnstyle uses function-style atomics on a plain field: also recognized.
//
//abp:handshake store=f load=peers
func fnstyle(s *shared) {
	atomic.StoreUint32(&s.f, 1)
	_ = peers(s) // accepted: call named peers, dominated by the atomic store
}

// suppressed documents an early optimistic check with a justified ignore.
//
//abp:handshake store=parked load=anyWork
func suppressed(w *worker) {
	//abp:ignore handshake the early check is an optimization; the post-store check below is the correctness path
	_ = w.anyWork() // accepted: justified ignore
	w.parked.Store(true)
	_ = w.anyWork() // accepted
}

var (
	_ = good
	_ = reversed
	_ = plainFlag
	_ = missing
	_ = malformed
	_ = fnstyle
	_ = suppressed
)
