// Package unusedignore is a CLI test fixture for abprace's scoped
// -unused-ignores: the //abp:race-ignore below suppresses nothing, so
// abprace must flag it as stale — while the equally stale //abp:ignore
// mustcheck directive is addressed to an analyzer abprace does not run,
// so judging it is abpvet's job and abprace must stay silent about it.
package unusedignore

//abp:race-ignore nothing here ever raced
var x = 1

//abp:ignore mustcheck nothing here ever produced a finding
var y = 2

var _ = x + y
