// Package table prints fixed-width text tables for the experiment
// harnesses, in the style of the rows a paper's evaluation section reports.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; values are formatted with %v, and float64 values with
// four significant digits.
func (t *Table) Row(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "## %s\n", t.title)
	}
	var sb strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	header := strings.TrimRight(sb.String(), " ")
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	fmt.Fprintln(w)
}
