package offline

import (
	"fmt"
	"strings"

	"worksteal/internal/dag"
)

// ExecSchedule records one execution schedule: for each step, the nodes
// executed at that step. The number of nodes executed at step i never
// exceeds p_i, and dependencies are observed (Section 2).
type ExecSchedule struct {
	Graph *dag.Graph
	// Steps[i] lists the nodes executed at step i. len(Steps[i]) <= p_i.
	Steps [][]dag.NodeID
	// Procs[i] is p_i, the number of processes the kernel scheduled at
	// step i; Procs[i] - len(Steps[i]) processes were idle.
	Procs []int
}

// Length returns the number of steps in the schedule.
func (e *ExecSchedule) Length() int { return len(e.Steps) }

// TotalProcSteps returns the sum of p_i over the schedule, i.e. the number
// of tokens in the proof of Theorem 2.
func (e *ExecSchedule) TotalProcSteps() int {
	total := 0
	for _, p := range e.Procs {
		total += p
	}
	return total
}

// ProcessorAverage returns P_A over the schedule's length.
func (e *ExecSchedule) ProcessorAverage() float64 {
	return float64(e.TotalProcSteps()) / float64(e.Length())
}

// IdleSteps returns the number of steps at which at least one scheduled
// process was idle (the "idle steps" of the Theorem 2 proof).
func (e *ExecSchedule) IdleSteps() int {
	n := 0
	for i := range e.Steps {
		if e.Procs[i] > len(e.Steps[i]) {
			n++
		}
	}
	return n
}

// IdleTokens returns the total number of idle process-steps.
func (e *ExecSchedule) IdleTokens() int {
	n := 0
	for i := range e.Steps {
		n += e.Procs[i] - len(e.Steps[i])
	}
	return n
}

// Validate checks that the schedule is a correct execution schedule for its
// graph under the given kernel: every node executed exactly once, never
// before its predecessors, and never more nodes at a step than scheduled
// processes.
func (e *ExecSchedule) Validate(k Kernel) error {
	execAt := make([]int, e.Graph.NumNodes())
	for i := range execAt {
		execAt[i] = -1
	}
	for i, nodes := range e.Steps {
		if want := k.ProcsAt(i); e.Procs[i] != want {
			return fmt.Errorf("offline: step %d records p=%d, kernel says %d", i, e.Procs[i], want)
		}
		if len(nodes) > e.Procs[i] {
			return fmt.Errorf("offline: step %d executes %d nodes with only %d processes", i, len(nodes), e.Procs[i])
		}
		for _, u := range nodes {
			if execAt[u] != -1 {
				return fmt.Errorf("offline: node %d executed twice (steps %d and %d)", u, execAt[u], i)
			}
			execAt[u] = i
		}
	}
	for u, at := range execAt {
		if at == -1 {
			return fmt.Errorf("offline: node %d never executed", u)
		}
	}
	for _, edge := range e.Graph.Edges() {
		if execAt[edge.From] >= execAt[edge.To] {
			return fmt.Errorf("offline: edge %d->%d violated (steps %d, %d)",
				edge.From, edge.To, execAt[edge.From], execAt[edge.To])
		}
	}
	return nil
}

// IsGreedy reports whether the schedule is greedy: at each step the number
// of nodes executed equals min(p_i, number of ready nodes at that step).
func (e *ExecSchedule) IsGreedy() bool {
	s := dag.NewState(e.Graph)
	for i, nodes := range e.Steps {
		want := e.Procs[i]
		if r := s.NumReady(); r < want {
			want = r
		}
		if len(nodes) != want {
			return false
		}
		for _, u := range nodes {
			s.Execute(u)
		}
	}
	return s.Done()
}

// String renders the schedule in the style of Figure 2(b): one row per step,
// with the executed nodes (1-based, matching the paper's x_k naming) and "I"
// for each idle scheduled process.
func (e *ExecSchedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "step | activity (p_i processes)\n")
	for i, nodes := range e.Steps {
		fmt.Fprintf(&sb, "%4d |", i+1)
		for _, u := range nodes {
			fmt.Fprintf(&sb, " x%d", u+1)
		}
		for j := len(nodes); j < e.Procs[i]; j++ {
			sb.WriteString(" I")
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "length %d, P_A %.2f, idle tokens %d\n",
		e.Length(), e.ProcessorAverage(), e.IdleTokens())
	return sb.String()
}

// Greedy computes a greedy execution schedule of g under kernel k: at each
// step it executes min(p_i, ready) ready nodes, preferring lower node ids.
// maxSteps guards against kernels that never schedule anyone; Greedy panics
// if the computation does not finish within maxSteps.
func Greedy(g *dag.Graph, k Kernel, maxSteps int) *ExecSchedule {
	s := dag.NewState(g)
	e := &ExecSchedule{Graph: g}
	for step := 0; !s.Done(); step++ {
		if step >= maxSteps {
			panic(fmt.Sprintf("offline: greedy schedule exceeded %d steps (%d/%d nodes executed)",
				maxSteps, s.NumExecuted(), g.NumNodes()))
		}
		p := k.ProcsAt(step)
		ready := s.ReadyNodes()
		n := p
		if len(ready) < n {
			n = len(ready)
		}
		exec := make([]dag.NodeID, n)
		copy(exec, ready[:n])
		for _, u := range exec {
			s.Execute(u)
		}
		e.Steps = append(e.Steps, exec)
		e.Procs = append(e.Procs, p)
	}
	return e
}

// Brent computes a level-by-level execution schedule: all nodes of
// longest-path level d execute before any node of level d+1 (Brent 1974).
// Theorem 2 also holds for these schedules.
func Brent(g *dag.Graph, k Kernel, maxSteps int) *ExecSchedule {
	levels := g.Levels()
	e := &ExecSchedule{Graph: g}
	level, off := 0, 0
	for step := 0; level < len(levels); step++ {
		if step >= maxSteps {
			panic(fmt.Sprintf("offline: Brent schedule exceeded %d steps", maxSteps))
		}
		p := k.ProcsAt(step)
		remaining := len(levels[level]) - off
		n := p
		if remaining < n {
			n = remaining
		}
		exec := make([]dag.NodeID, n)
		copy(exec, levels[level][off:off+n])
		off += n
		if off == len(levels[level]) {
			level++
			off = 0
		}
		e.Steps = append(e.Steps, exec)
		e.Procs = append(e.Procs, p)
	}
	return e
}

// CheckTheorem1 verifies the universal lower bound of Theorem 1 on an
// execution schedule: length >= T1/P_A.
func CheckTheorem1(e *ExecSchedule) error {
	t1 := float64(e.Graph.Work())
	lhs := float64(e.Length())
	if pa := e.ProcessorAverage(); lhs*pa < t1-1e-9 {
		return fmt.Errorf("offline: Theorem 1 violated: length %v * P_A %v < T1 %v", lhs, pa, t1)
	}
	return nil
}

// CheckTheorem2 verifies the greedy upper bound of Theorem 2:
// length <= T1/P_A + Tinf*P/P_A, equivalently sum(p_i) <= T1 + Tinf*P.
// (The token argument actually gives the slightly stronger T1 + Tinf*(P-1),
// which we check.)
func CheckTheorem2(e *ExecSchedule, p int) error {
	t1 := e.Graph.Work()
	tinf := e.Graph.CriticalPath()
	tokens := e.TotalProcSteps()
	if bound := t1 + tinf*(p-1); tokens > bound {
		return fmt.Errorf("offline: Theorem 2 violated: %d tokens > T1 + Tinf*(P-1) = %d", tokens, bound)
	}
	return nil
}
