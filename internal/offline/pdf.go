package offline

import (
	"fmt"

	"worksteal/internal/dag"
)

// This file implements the parallel depth-first (PDF) scheduler of Blelloch,
// Gibbons and Matias [4,5], which the paper's Section 5 singles out: "Of
// particular interest here is the idea of deriving parallel depth-first
// schedules from serial schedules... The practical application and possible
// adaptation of this idea to multiprogrammed environments is an open
// question." Implementing it lets experiment E13 compare PDF against greedy
// and Brent schedules under both dedicated and multiprogrammed kernel
// schedules — an empirical look at that open question.

// OneDFOrder returns each node's index in the 1DF-schedule: the execution
// order of a single process running the scheduling loop depth-first
// (execute the assigned node; on a spawn/enable, push one child and
// continue with the other; on die/block, pop the most recently pushed).
// This is the serial schedule PDF priorities derive from.
func OneDFOrder(g *dag.Graph) []int {
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = -1
	}
	st := dag.NewState(g)
	stack := []dag.NodeID{g.Root()}
	idx := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order[u] = idx
		idx++
		enabled := st.Execute(u)
		// Push children so the depth-first ("run child first") choice pops
		// next: the non-continuation child goes on top.
		switch len(enabled) {
		case 1:
			stack = append(stack, enabled[0])
		case 2:
			c0, c1 := enabled[0], enabled[1]
			if kindOf(g, u, c0) != dag.Continuation && kindOf(g, u, c1) == dag.Continuation {
				stack = append(stack, c1, c0)
			} else {
				stack = append(stack, c0, c1)
			}
		}
	}
	if idx != g.NumNodes() {
		panic(fmt.Sprintf("offline: 1DF order covered %d of %d nodes", idx, g.NumNodes()))
	}
	return order
}

func kindOf(g *dag.Graph, from, to dag.NodeID) dag.EdgeKind {
	for _, e := range g.Succs(from) {
		if e.To == to {
			return e.Kind
		}
	}
	panic("offline: missing edge")
}

// PDF computes the parallel depth-first execution schedule: a greedy
// schedule that, whenever there are more ready nodes than processes,
// executes the ready nodes that come earliest in the 1DF order. PDF
// schedules have strong space bounds in dedicated environments (Blelloch
// et al.); E13 measures how they fare under multiprogrammed kernels.
func PDF(g *dag.Graph, k Kernel, maxSteps int) *ExecSchedule {
	prio := OneDFOrder(g)
	s := dag.NewState(g)
	e := &ExecSchedule{Graph: g}
	for step := 0; !s.Done(); step++ {
		if step >= maxSteps {
			panic(fmt.Sprintf("offline: PDF schedule exceeded %d steps", maxSteps))
		}
		p := k.ProcsAt(step)
		ready := s.ReadyNodes()
		// Select the p ready nodes with the smallest 1DF indices.
		if len(ready) > p {
			// Simple selection: sort by priority (ready sets are small).
			for i := 1; i < len(ready); i++ {
				for j := i; j > 0 && prio[ready[j]] < prio[ready[j-1]]; j-- {
					ready[j], ready[j-1] = ready[j-1], ready[j]
				}
			}
			ready = ready[:p]
		}
		exec := make([]dag.NodeID, len(ready))
		copy(exec, ready)
		for _, u := range exec {
			s.Execute(u)
		}
		e.Steps = append(e.Steps, exec)
		e.Procs = append(e.Procs, p)
	}
	return e
}

// MaxReady returns the maximum number of simultaneously ready-but-unexecuted
// nodes over the schedule — the scheduler's task-queue space. PDF schedules
// exist to keep this near the serial schedule's maximum.
func (e *ExecSchedule) MaxReady() int {
	s := dag.NewState(e.Graph)
	max := s.NumReady()
	for _, nodes := range e.Steps {
		for _, u := range nodes {
			s.Execute(u)
		}
		if r := s.NumReady(); r > max {
			max = r
		}
	}
	return max
}
