package sched

import (
	"runtime"

	"worksteal/internal/atomicx"
)

// Group tracks a dynamic set of spawned tasks so they can be joined
// together — the equivalent of Cilk's sync for task sets whose size isn't
// known up front (tree searches, graph traversals). Wait helps execute
// other tasks while waiting, like Future.Join.
//
// A Group may be reused after Wait returns. Spawning from inside member
// tasks is allowed (the count covers them transitively).
type Group struct {
	// pending's decrement result is consumed (exactly one decrementer
	// observes zero and wakes the waiters): sc arbitration.
	pending atomicx.SCInt64
	// ch is swapped out by the waker — an atomic read-modify-write that
	// exactly one caller wins per generation, hence sc. It shares
	// pending's cache line on purpose: the decrementer that wins pending's
	// zero race immediately swaps ch, so the two words are dirtied in one
	// ordered sequence by the same goroutine — one invalidation, not two —
	// and a Group is a small user-allocated value not worth a 64-byte pad.
	//abp:layout-ignore pending and ch are co-written by the single winning waker per generation; padding would double a user-visible struct for one saved invalidation
	ch atomicx.SCPointer[chan struct{}]
}

// NewGroup returns an empty group.
func NewGroup() *Group {
	g := &Group{}
	ch := make(chan struct{})
	g.ch.Store(&ch)
	return g
}

// Spawn schedules fn as part of the group.
func (g *Group) Spawn(w *Worker, fn func(*Worker)) {
	g.pending.Add(1)
	w.Spawn(func(inner *Worker) {
		defer g.done()
		fn(inner)
	})
}

func (g *Group) done() {
	if g.pending.Add(-1) == 0 {
		// Wake waiters; swap in a fresh channel for reuse.
		old := g.ch.Swap(newGroupChan())
		close(*old)
	}
}

func newGroupChan() *chan struct{} {
	ch := make(chan struct{})
	return &ch
}

// Wait blocks until every task spawned into the group (so far) has
// finished, executing other tasks while it waits. Like Future.Join, Wait
// checks its own submission's abort between helped tasks, so a cancelled
// or panicked submission unwinds a helping waiter at the next task
// boundary instead of after it drains its backlog.
func (g *Group) Wait(w *Worker) {
	r := w.currentRun()
	for g.pending.Load() > 0 {
		select {
		case <-r.abort:
			if g.pending.Load() > 0 {
				// The abort-channel receive orders the cause reads after
				// the aborter's writes (see Future.Join).
				cause := any(r.panicVal)
				if cause == nil {
					cause = r.err
				}
				panic(poolAbortedError{cause: cause})
			}
		default:
		}
		if t := w.tryGetTask(); t != nil {
			w.execOrDrop(t)
			continue
		}
		if w.anyVisibleWork() {
			runtime.Gosched()
			continue
		}
		ch := g.ch.Load()
		if g.pending.Load() == 0 {
			return
		}
		select {
		case <-*ch:
		case <-r.abort:
			if g.pending.Load() > 0 {
				cause := any(r.panicVal)
				if cause == nil {
					cause = r.err
				}
				panic(poolAbortedError{cause: cause})
			}
		}
	}
}

// Invoke runs the given functions as parallel tasks and returns when all
// have completed (TBB's parallel_invoke). The last function runs inline.
func Invoke(w *Worker, fns ...func(*Worker)) {
	if len(fns) == 0 {
		return
	}
	g := NewGroup()
	for _, fn := range fns[:len(fns)-1] {
		g.Spawn(w, fn)
	}
	fns[len(fns)-1](w)
	g.Wait(w)
}
